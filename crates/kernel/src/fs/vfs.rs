//! The mount seam: a [`FileSystem`] trait plus a small longest-prefix
//! [`MountTable`].
//!
//! The simulated kernel used to hard-wire a single [`Tmpfs`]; every file
//! syscall called its inherent methods directly. This module introduces the
//! minimal indirection needed to hang other filesystems (first of all the
//! procfs at `/proc`) off the same syscall surface:
//!
//! - [`FileSystem`] splits the tmpfs API into *inode* operations (reads and
//!   writes against an already-opened [`Ino`]) and *path* operations that
//!   take **normalized component slices relative to the mount root** (the
//!   `_rel` suffix). The kernel normalizes `(cwd, path)` once, the mount
//!   table strips the mount prefix, and the filesystem never sees absolute
//!   strings it would have to re-parse.
//! - [`MountTable`] dispatches a normalized component list to the mount
//!   with the longest matching prefix ([`strip_prefix`]); the root mount
//!   (empty prefix) always matches, so resolution can't fail to find *a*
//!   filesystem. Operations that would span two mounts (`link`, `rename`)
//!   are refused with `EXDEV` by the kernel before either side runs.
//!
//! [`Tmpfs`] implements the trait by joining the component slice back into
//! an absolute path against its own root — its inherent string API (and
//! every existing caller of it) is unchanged.

use super::tmpfs::{DirEntry, FileStat, Ino, Tmpfs};
use super::{path::strip_prefix, OpenFlags};
use crate::errno::KResult;
use std::sync::Arc;

/// A mountable filesystem: the seam between the syscall layer and a
/// concrete file store.
///
/// Path-taking methods receive components already normalized (no `.`/`..`,
/// no empty segments) and already stripped of the mount prefix — an empty
/// slice is the mount root itself.
pub trait FileSystem: Send + Sync + std::fmt::Debug {
    /// Short filesystem-type name (diagnostics: `tmpfs`, `proc`).
    fn fs_name(&self) -> &'static str;

    /// Open (and possibly create/truncate) the file at `rel`; returns its
    /// inode with an open reference the caller must [`FileSystem::release`].
    fn open_rel(&self, rel: &[String], flags: OpenFlags) -> KResult<Ino>;
    /// Resolve `rel` to an inode without opening it.
    fn resolve_rel(&self, rel: &[String]) -> KResult<Ino>;
    /// `stat(2)` for the inode at `rel`.
    fn stat_rel(&self, rel: &[String]) -> KResult<FileStat>;
    /// Create a directory at `rel`.
    fn mkdir_rel(&self, rel: &[String]) -> KResult<Ino>;
    /// Remove the file link at `rel`.
    fn unlink_rel(&self, rel: &[String]) -> KResult<()>;
    /// Remove the empty directory at `rel`.
    fn rmdir_rel(&self, rel: &[String]) -> KResult<()>;
    /// Add a second name `new` for the file at `existing` (same mount —
    /// the kernel refuses cross-mount links with `EXDEV` before calling).
    fn link_rel(&self, existing: &[String], new: &[String]) -> KResult<()>;
    /// Atomically move `from` to `to` (same mount, as with links).
    fn rename_rel(&self, from: &[String], to: &[String]) -> KResult<()>;
    /// List the directory at `rel` in name order.
    fn readdir_rel(&self, rel: &[String]) -> KResult<Vec<DirEntry>>;

    /// Read up to `buf.len()` bytes at `offset` from an opened inode.
    fn read_at(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> KResult<usize>;
    /// Write `src` at `offset` to an opened inode.
    fn write_at(&self, ino: Ino, offset: u64, src: &[u8]) -> KResult<usize>;
    /// Current size of an opened inode.
    fn size(&self, ino: Ino) -> KResult<u64>;
    /// Truncate or extend an opened inode to `len`.
    fn truncate(&self, ino: Ino, len: u64) -> KResult<()>;
    /// Drop one open reference (close).
    fn release(&self, ino: Ino);
}

/// Join mount-relative components back into an absolute path for the
/// tmpfs's string API (`[]` is the mount root, `/`).
fn rel_to_abs(rel: &[String]) -> String {
    if rel.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", rel.join("/"))
    }
}

impl FileSystem for Tmpfs {
    fn fs_name(&self) -> &'static str {
        "tmpfs"
    }

    fn open_rel(&self, rel: &[String], flags: OpenFlags) -> KResult<Ino> {
        self.open("/", &rel_to_abs(rel), flags)
    }

    fn resolve_rel(&self, rel: &[String]) -> KResult<Ino> {
        self.resolve("/", &rel_to_abs(rel))
    }

    fn stat_rel(&self, rel: &[String]) -> KResult<FileStat> {
        self.stat("/", &rel_to_abs(rel))
    }

    fn mkdir_rel(&self, rel: &[String]) -> KResult<Ino> {
        self.mkdir("/", &rel_to_abs(rel))
    }

    fn unlink_rel(&self, rel: &[String]) -> KResult<()> {
        self.unlink("/", &rel_to_abs(rel))
    }

    fn rmdir_rel(&self, rel: &[String]) -> KResult<()> {
        self.rmdir("/", &rel_to_abs(rel))
    }

    fn link_rel(&self, existing: &[String], new: &[String]) -> KResult<()> {
        self.link("/", &rel_to_abs(existing), &rel_to_abs(new))
    }

    fn rename_rel(&self, from: &[String], to: &[String]) -> KResult<()> {
        self.rename("/", &rel_to_abs(from), &rel_to_abs(to))
    }

    fn readdir_rel(&self, rel: &[String]) -> KResult<Vec<DirEntry>> {
        self.readdir("/", &rel_to_abs(rel))
    }

    fn read_at(&self, ino: Ino, offset: u64, buf: &mut [u8]) -> KResult<usize> {
        Tmpfs::read_at(self, ino, offset, buf)
    }

    fn write_at(&self, ino: Ino, offset: u64, src: &[u8]) -> KResult<usize> {
        Tmpfs::write_at(self, ino, offset, src)
    }

    fn size(&self, ino: Ino) -> KResult<u64> {
        Tmpfs::size(self, ino)
    }

    fn truncate(&self, ino: Ino, len: u64) -> KResult<()> {
        Tmpfs::truncate(self, ino, len)
    }

    fn release(&self, ino: Ino) {
        Tmpfs::release(self, ino)
    }
}

/// One mounted filesystem: where it hangs and what serves it.
#[derive(Debug, Clone)]
pub struct Mount {
    /// Normalized mount-point components (`["proc"]` for `/proc`; the root
    /// mount's prefix is empty).
    pub prefix: Vec<String>,
    /// The filesystem serving paths under the prefix.
    pub fs: Arc<dyn FileSystem>,
}

/// The mount table: a root filesystem plus zero or more prefix mounts,
/// dispatched longest-prefix-first.
#[derive(Debug)]
pub struct MountTable {
    /// All mounts; `mounts[0]` is the root (empty prefix). Kept sorted by
    /// descending prefix length so the first match is the longest.
    mounts: Vec<Mount>,
}

impl MountTable {
    /// A table with only the root mount.
    pub fn new(root: Arc<dyn FileSystem>) -> MountTable {
        MountTable {
            mounts: vec![Mount {
                prefix: Vec::new(),
                fs: root,
            }],
        }
    }

    /// Mount `fs` at the normalized prefix `prefix` (e.g. `["proc"]`).
    /// Mounting again at the same prefix replaces the previous filesystem.
    pub fn mount(&mut self, prefix: Vec<String>, fs: Arc<dyn FileSystem>) {
        self.mounts.retain(|m| m.prefix != prefix);
        self.mounts.push(Mount { prefix, fs });
        self.mounts
            .sort_by_key(|m| std::cmp::Reverse(m.prefix.len()));
    }

    /// Dispatch a normalized absolute component list to the longest-prefix
    /// mount; returns the serving filesystem and the mount-relative
    /// remainder. Always succeeds — the root mount matches everything.
    pub fn resolve<'a>(&self, comps: &'a [String]) -> (&Arc<dyn FileSystem>, &'a [String]) {
        for m in &self.mounts {
            if let Some(rest) = strip_prefix(comps, &m.prefix) {
                return (&m.fs, rest);
            }
        }
        unreachable!("the root mount's empty prefix matches every path");
    }

    /// Names of mount points living *directly inside* the directory at
    /// `comps` — used by `readdir` to synthesize entries (like `proc` in a
    /// listing of `/`) that the underlying filesystem knows nothing about.
    pub fn child_mounts(&self, comps: &[String]) -> Vec<String> {
        let mut names: Vec<String> = self
            .mounts
            .iter()
            .filter(|m| m.prefix.len() == comps.len() + 1)
            .filter(|m| strip_prefix(&m.prefix, comps).is_some())
            .map(|m| m.prefix.last().expect("non-root prefix").clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// The root filesystem (the empty-prefix mount).
    pub fn root(&self) -> &Arc<dyn FileSystem> {
        &self
            .mounts
            .iter()
            .find(|m| m.prefix.is_empty())
            .expect("a root mount always exists")
            .fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::normalize;

    fn comps(p: &str) -> Vec<String> {
        normalize("/", p)
    }

    #[test]
    fn tmpfs_serves_through_the_trait() {
        let fs = Tmpfs::new();
        let ino = fs
            .open_rel(
                &comps("/f"),
                OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
            )
            .unwrap();
        assert_eq!(FileSystem::write_at(&fs, ino, 0, b"abc").unwrap(), 3);
        let mut buf = [0u8; 3];
        assert_eq!(FileSystem::read_at(&fs, ino, 0, &mut buf).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        assert_eq!(fs.stat_rel(&comps("/f")).unwrap().size, 3);
        // The mount root resolves as the tmpfs root directory.
        assert!(fs.stat_rel(&[]).unwrap().is_dir);
        FileSystem::release(&fs, ino);
        assert_eq!(fs.fs_name(), "tmpfs");
    }

    #[test]
    fn longest_prefix_wins() {
        let root: Arc<dyn FileSystem> = Arc::new(Tmpfs::new());
        let proc_fs: Arc<dyn FileSystem> = Arc::new(Tmpfs::new());
        let deep: Arc<dyn FileSystem> = Arc::new(Tmpfs::new());
        let mut table = MountTable::new(root.clone());
        table.mount(comps("/proc"), proc_fs.clone());
        table.mount(comps("/proc/deep"), deep.clone());

        let c = comps("/proc/deep/x");
        let (fs, rest) = table.resolve(&c);
        assert!(Arc::ptr_eq(fs, &deep));
        assert_eq!(rest, &comps("/x")[..]);

        let c = comps("/proc/self/stat");
        let (fs, rest) = table.resolve(&c);
        assert!(Arc::ptr_eq(fs, &proc_fs));
        assert_eq!(rest, &comps("/self/stat")[..]);

        let c = comps("/etc/passwd");
        let (fs, rest) = table.resolve(&c);
        assert!(Arc::ptr_eq(fs, &root));
        assert_eq!(rest, &c[..]);

        // The mount point itself dispatches to the mounted fs root.
        let c = comps("/proc");
        let (fs, rest) = table.resolve(&c);
        assert!(Arc::ptr_eq(fs, &proc_fs));
        assert!(rest.is_empty());
    }

    #[test]
    fn child_mounts_lists_direct_children_only() {
        let mut table = MountTable::new(Arc::new(Tmpfs::new()) as Arc<dyn FileSystem>);
        table.mount(comps("/proc"), Arc::new(Tmpfs::new()));
        table.mount(comps("/dev"), Arc::new(Tmpfs::new()));
        table.mount(comps("/dev/shm"), Arc::new(Tmpfs::new()));
        assert_eq!(table.child_mounts(&[]), vec!["dev", "proc"]);
        assert_eq!(table.child_mounts(&comps("/dev")), vec!["shm"]);
        assert!(table.child_mounts(&comps("/proc")).is_empty());
    }

    #[test]
    fn root_accessor_returns_the_empty_prefix_mount() {
        let root: Arc<dyn FileSystem> = Arc::new(Tmpfs::new());
        let mut table = MountTable::new(root.clone());
        table.mount(comps("/proc"), Arc::new(Tmpfs::new()));
        assert!(Arc::ptr_eq(table.root(), &root));
    }
}
