//! Minimal absolute-path handling for the tmpfs.

/// Normalize a path against a current working directory: resolves `.`/`..`,
/// collapses duplicate slashes, and returns the component list from the
/// root. Relative paths are interpreted against `cwd` (itself expected to be
/// normalized and absolute).
pub fn normalize(cwd: &str, path: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let base: &str = if path.starts_with('/') { "" } else { cwd };
    for comp in base.split('/').chain(path.split('/')) {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            c => out.push(c.to_string()),
        }
    }
    out
}

/// Split a normalized component list into (parent components, final name).
/// Returns `None` for the root itself.
pub fn split_parent(comps: &[String]) -> Option<(&[String], &str)> {
    let (last, parent) = comps.split_last()?;
    Some((parent, last.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(cwd: &str, p: &str) -> Vec<String> {
        normalize(cwd, p)
    }

    #[test]
    fn absolute_paths_ignore_cwd() {
        assert_eq!(n("/home", "/tmp/x"), vec!["tmp", "x"]);
    }

    #[test]
    fn relative_paths_use_cwd() {
        assert_eq!(n("/home/user", "file"), vec!["home", "user", "file"]);
    }

    #[test]
    fn dot_and_dotdot_resolve() {
        assert_eq!(n("/", "/a/./b/../c"), vec!["a", "c"]);
        assert_eq!(n("/a/b", ".."), vec!["a"]);
        assert_eq!(n("/", "/../.."), Vec::<String>::new());
    }

    #[test]
    fn duplicate_slashes_collapse() {
        assert_eq!(n("/", "//x///y"), vec!["x", "y"]);
    }

    #[test]
    fn split_parent_works() {
        let comps = n("/", "/a/b/c");
        let (parent, name) = split_parent(&comps).unwrap();
        assert_eq!(parent, &["a".to_string(), "b".to_string()][..]);
        assert_eq!(name, "c");
        assert!(split_parent(&[]).is_none());
    }
}
