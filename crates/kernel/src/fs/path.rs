//! Minimal absolute-path handling for the tmpfs.

/// Normalize a path against a current working directory: resolves `.`/`..`,
/// collapses duplicate slashes, and returns the component list from the
/// root. Relative paths are interpreted against `cwd` (itself expected to be
/// normalized and absolute).
pub fn normalize(cwd: &str, path: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let base: &str = if path.starts_with('/') { "" } else { cwd };
    for comp in base.split('/').chain(path.split('/')) {
        match comp {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            c => out.push(c.to_string()),
        }
    }
    out
}

/// Split a normalized component list into (parent components, final name).
/// Returns `None` for the root itself.
pub fn split_parent(comps: &[String]) -> Option<(&[String], &str)> {
    let (last, parent) = comps.split_last()?;
    Some((parent, last.as_str()))
}

/// If `comps` lies under `prefix`, return the remainder (the mount-relative
/// components). This is the longest-prefix dispatch primitive of the mount
/// table: `/proc/self/stat` against the prefix `["proc"]` yields
/// `["self", "stat"]`; the empty prefix (the root mount) matches everything.
pub fn strip_prefix<'a>(comps: &'a [String], prefix: &[String]) -> Option<&'a [String]> {
    if comps.len() < prefix.len() {
        return None;
    }
    if comps[..prefix.len()] != *prefix {
        return None;
    }
    Some(&comps[prefix.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(cwd: &str, p: &str) -> Vec<String> {
        normalize(cwd, p)
    }

    #[test]
    fn absolute_paths_ignore_cwd() {
        assert_eq!(n("/home", "/tmp/x"), vec!["tmp", "x"]);
    }

    #[test]
    fn relative_paths_use_cwd() {
        assert_eq!(n("/home/user", "file"), vec!["home", "user", "file"]);
    }

    #[test]
    fn dot_and_dotdot_resolve() {
        assert_eq!(n("/", "/a/./b/../c"), vec!["a", "c"]);
        assert_eq!(n("/a/b", ".."), vec!["a"]);
        assert_eq!(n("/", "/../.."), Vec::<String>::new());
    }

    #[test]
    fn duplicate_slashes_collapse() {
        assert_eq!(n("/", "//x///y"), vec!["x", "y"]);
    }

    #[test]
    fn strip_prefix_dispatches_mounts() {
        let comps = n("/", "/proc/self/stat");
        let proc_prefix = vec!["proc".to_string()];
        assert_eq!(
            strip_prefix(&comps, &proc_prefix),
            Some(&["self".to_string(), "stat".to_string()][..])
        );
        // The empty (root) prefix matches everything.
        assert_eq!(strip_prefix(&comps, &[]), Some(&comps[..]));
        // The mount point itself strips to the empty remainder.
        assert_eq!(strip_prefix(&proc_prefix, &proc_prefix), Some(&[][..]));
        // Non-prefixes and sibling paths do not match.
        assert_eq!(strip_prefix(&n("/", "/prox/x"), &proc_prefix), None);
        assert_eq!(strip_prefix(&[], &proc_prefix), None);
    }

    #[test]
    fn split_parent_works() {
        let comps = n("/", "/a/b/c");
        let (parent, name) = split_parent(&comps).unwrap();
        assert_eq!(parent, &["a".to_string(), "b".to_string()][..]);
        assert_eq!(name, "c");
        assert!(split_parent(&[]).is_none());
    }
}
