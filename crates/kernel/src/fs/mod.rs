//! Filesystems for the simulated kernel: tmpfs, procfs, and the mount seam.
//!
//! The paper's AIO-vs-ULP evaluation (Figs. 7–8) opens, writes and closes
//! files "on the tmpfs file system to exclude the variation of actual disk
//! access" (§VI-D). A Linux tmpfs write is, at its core, a memcpy into page
//! cache pages; this module reproduces that: file data lives in anonymous
//! memory and `write` really copies the caller's buffer, so the measured
//! duration scales with buffer size exactly as on the paper's testbed, minus
//! the (injected) syscall-entry cost.
//!
//! Since PR 7, the tmpfs is just the `/` implementation behind a minimal
//! mount seam ([`FileSystem`] + [`MountTable`], see [`vfs`](self)): path
//! resolution dispatches on the longest mounted prefix, and a read-only
//! [`ProcFs`] is mounted at `/proc` to expose the live runtime to its own
//! ULPs.

mod path;
mod procfs;
mod tmpfs;
mod vfs;

pub use path::{normalize, split_parent, strip_prefix};
pub use procfs::{install_proc_provider, ProcFs, ProcProvider, ProcSource};
pub use tmpfs::{DirEntry, FileStat, Ino, IoModel, Tmpfs};
pub use vfs::{FileSystem, Mount, MountTable};

/// Open flags, mirroring the POSIX `O_*` constants the paper's benchmark
/// uses (`open(O_CREAT|O_WRONLY|O_TRUNC)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags(pub u32);

impl OpenFlags {
    /// Read-only access mode.
    pub const RDONLY: OpenFlags = OpenFlags(0);
    /// Write-only access mode.
    pub const WRONLY: OpenFlags = OpenFlags(1);
    /// Read/write access mode.
    pub const RDWR: OpenFlags = OpenFlags(2);
    /// Create the file if it does not exist.
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    /// With [`OpenFlags::CREAT`]: fail if the file already exists.
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    /// Truncate to zero length on open.
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    /// Every write lands at end-of-file.
    pub const APPEND: OpenFlags = OpenFlags(0o2000);

    /// Whether `other`'s access mode / flag bits are all present in `self`.
    #[inline]
    pub fn contains(&self, other: OpenFlags) -> bool {
        // Access mode (low 2 bits) is a value, not a bitmask.
        if other.0 <= 2 {
            (self.0 & 0b11) == other.0
        } else {
            self.0 & other.0 == other.0
        }
    }

    /// May this descriptor read?
    #[inline]
    pub fn readable(&self) -> bool {
        let mode = self.0 & 0b11;
        mode == Self::RDONLY.0 || mode == Self::RDWR.0
    }

    /// May this descriptor write?
    #[inline]
    pub fn writable(&self) -> bool {
        let mode = self.0 & 0b11;
        mode == Self::WRONLY.0 || mode == Self::RDWR.0
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

/// Seek origin for `lseek`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// Absolute offset (`SEEK_SET`).
    Set,
    /// Relative to the current offset (`SEEK_CUR`).
    Cur,
    /// Relative to end-of-file (`SEEK_END`).
    End,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_composition() {
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert!(f.writable());
        assert!(!f.readable());
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::TRUNC));
        assert!(!f.contains(OpenFlags::APPEND));
    }

    #[test]
    fn rdwr_is_both() {
        let f = OpenFlags::RDWR;
        assert!(f.readable() && f.writable());
    }

    #[test]
    fn rdonly_is_not_wronly() {
        // O_RDONLY == 0, so containment must treat the access mode as a
        // value; a WRONLY descriptor does not "contain" RDONLY.
        assert!(!OpenFlags::WRONLY.contains(OpenFlags::RDONLY));
        assert!(OpenFlags::RDONLY.contains(OpenFlags::RDONLY));
    }
}
