//! The simulated kernel: process table, thread↔process binding, lifecycle.
//!
//! ## Why a simulated kernel
//!
//! The paper's ULPs are real Linux processes sharing one address space via
//! PiP; their PIDs, FD tables and signal state live in the real kernel,
//! keyed by the *kernel context* executing the system call. Our ULPs are
//! contexts inside one Rust process, so this module supplies the same
//! keying: every **OS thread** (the runtime's kernel context) is *bound* to
//! at most one simulated process per kernel instance, and every simulated
//! system call executes against the binding of the OS thread that invokes
//! it — not against any notion of "current user context". A user context
//! migrated to a foreign kernel context therefore observes foreign kernel
//! state, which is precisely the system-call-consistency hazard the paper's
//! `couple()`/`decouple()` protocol exists to fix (§V-B).

use crate::cost::ArchProfile;
use crate::errno::{Errno, KResult};
use crate::fd::FileObject;
use crate::fs::{FileSystem, MountTable, ProcFs, Tmpfs};
use crate::process::{Pid, ProcState, Process};
use crate::signal::Signal;
use crate::trace::{self, SyscallPhase, Sysno};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Shared handle to a simulated kernel.
pub type KernelRef = Arc<Kernel>;

static NEXT_KERNEL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (kernel id → bound pid) for the current OS thread. A thread can be
    /// bound in several kernel instances at once (tests do this), but in at
    /// most one process per instance.
    static BINDINGS: RefCell<Vec<(u64, Pid)>> = const { RefCell::new(Vec::new()) };
}

/// The most recent pid bound on the calling thread in *any* kernel
/// instance, if one exists. Used by the fault-injection layer
/// ([`crate::fault`]) to key per-process fault streams without a kernel
/// handle in scope.
pub(crate) fn any_bound_pid() -> Option<Pid> {
    BINDINGS.with(|b| b.borrow().last().map(|(_, pid)| *pid))
}

/// A record of one executed system call, for the consistency audit.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Process the call executed against (the *bound* process).
    pub pid: Pid,
    /// System call name.
    pub call: &'static str,
    /// OS thread that executed it.
    pub thread: std::thread::ThreadId,
}

/// The simulated kernel: process table, shared tmpfs, PID allocation and
/// per-thread process bindings. Usually handled through [`KernelRef`].
#[derive(Debug)]
pub struct Kernel {
    id: u64,
    profile: ArchProfile,
    /// The root filesystem — one tmpfs per kernel, shared by all its
    /// processes, mirroring how PiP processes share the host's tmpfs.
    pub(crate) fs: Arc<Tmpfs>,
    /// Mounted filesystems: the tmpfs at `/`, a read-only procfs at
    /// `/proc`. Path syscalls dispatch on the longest mounted prefix.
    pub(crate) mounts: MountTable,
    pub(crate) procs: Mutex<HashMap<Pid, Arc<Process>>>,
    next_pid: AtomicU64,
    /// waitpid parking: signaled whenever any child exits.
    pub(crate) wait_lock: Mutex<()>,
    pub(crate) child_exited: Condvar,
    /// AIO service, lazily created on the first AIO call (exactly like
    /// glibc, which spawns its helper thread on first use — §II).
    pub(crate) aio: std::sync::OnceLock<crate::aio::AioService>,
    trace_enabled: AtomicBool,
    trace: Mutex<Vec<TraceEntry>>,
    /// Total system calls executed (cheap counter, always on).
    pub(crate) syscall_count: AtomicU64,
}

impl Kernel {
    /// Boot a fresh kernel with PID 1 ("init", auto-created) and the given
    /// architecture cost profile. The mount table starts with the tmpfs at
    /// `/` and a read-only [`ProcFs`] at `/proc`; the procfs holds only a
    /// [`std::sync::Weak`] back-reference (hence `new_cyclic`), so it never
    /// keeps its own kernel alive.
    pub fn new(profile: ArchProfile) -> KernelRef {
        let kernel = Arc::new_cyclic(|weak: &std::sync::Weak<Kernel>| {
            let fs = Arc::new(Tmpfs::new());
            let mut mounts = MountTable::new(fs.clone());
            mounts.mount(
                vec!["proc".to_string()],
                Arc::new(ProcFs::new(weak.clone())),
            );
            Kernel {
                id: NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed),
                profile,
                fs,
                mounts,
                procs: Mutex::new(HashMap::new()),
                next_pid: AtomicU64::new(1),
                wait_lock: Mutex::new(()),
                child_exited: Condvar::new(),
                aio: std::sync::OnceLock::new(),
                trace_enabled: AtomicBool::new(false),
                trace: Mutex::new(Vec::new()),
                syscall_count: AtomicU64::new(0),
            }
        });
        let init = kernel.spawn_process(None, "init");
        debug_assert_eq!(init, Pid(1));
        kernel
    }

    /// Boot with no cost injection (host-native speed).
    pub fn native() -> KernelRef {
        Kernel::new(ArchProfile::Native)
    }

    /// The architecture cost profile this kernel was built with.
    pub fn profile(&self) -> ArchProfile {
        self.profile
    }

    /// Charge the architectural syscall-entry cost and record the audit
    /// trace entry. Called at the top of every simulated system call.
    /// Counters are *not* bumped here — they commit at exit (see
    /// [`Kernel::syscall_span`]).
    #[inline]
    pub(crate) fn enter_syscall(&self, no: Sysno, pid: Pid) {
        crate::cost::spin_for(self.profile.syscall_entry());
        if self.trace_enabled.load(Ordering::Relaxed) {
            self.trace.lock().push(TraceEntry {
                pid,
                call: no.name(),
                thread: std::thread::current().id(),
            });
        }
    }

    /// Run one system call body inside an observed span: charges the entry
    /// cost, emits the `Enter`/`Exit` pair through the global observer hook
    /// (see [`crate::trace`]), and forwards the result. The `Exit` record
    /// carries the raw errno (`0` on success) so the span shows up in the
    /// merged timeline with its outcome.
    ///
    /// The kernel-wide and per-process syscall counters are bumped **after
    /// the body returns**, matching where the trace observer records the
    /// span's latency. This exit-time commit is what lets a procfs file
    /// body generated *inside* an `open()` (`/proc/ulp/metrics`,
    /// `/proc/self/stat`) agree exactly with an external snapshot taken
    /// just before the open: the in-flight open itself is not yet counted
    /// anywhere when the content is frozen.
    #[inline]
    pub(crate) fn syscall_span<T>(
        &self,
        no: Sysno,
        pid: Pid,
        proc: &Process,
        f: impl FnOnce() -> KResult<T>,
    ) -> KResult<T> {
        trace::emit(no, SyscallPhase::Enter);
        self.enter_syscall(no, pid);
        let out = f();
        self.syscall_count.fetch_add(1, Ordering::Relaxed);
        proc.syscalls.fetch_add(1, Ordering::Relaxed);
        trace::emit(
            no,
            SyscallPhase::Exit {
                errno: errno_of(&out),
            },
        );
        out
    }

    /// Normalize `path` against `cwd` and dispatch it on the mount table:
    /// returns the owning filesystem plus the mount-relative components.
    pub(crate) fn resolve_fs(&self, cwd: &str, path: &str) -> (Arc<dyn FileSystem>, Vec<String>) {
        let comps = crate::fs::normalize(cwd, path);
        let (fs, rel) = self.mounts.resolve(&comps);
        (fs.clone(), rel.to_vec())
    }

    // ----- process lifecycle ------------------------------------------------

    /// Create a new simulated process (the kernel half of spawning a ULP).
    /// The caller is responsible for binding an OS thread to it.
    pub fn spawn_process(&self, ppid: Option<Pid>, name: &str) -> Pid {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed) as u32);
        let proc = Arc::new(Process::new(pid, ppid, name.to_string()));
        self.procs.lock().insert(pid, proc);
        if let Some(parent) = ppid {
            if let Some(p) = self.process(parent) {
                p.children.lock().insert(pid);
            }
        }
        pid
    }

    /// Look up a live or zombie process.
    pub fn process(&self, pid: Pid) -> Option<Arc<Process>> {
        self.procs.lock().get(&pid).cloned()
    }

    /// Number of processes currently in the table (incl. zombies).
    pub fn process_count(&self) -> usize {
        self.procs.lock().len()
    }

    /// Terminate a process: close its descriptors, mark it a zombie, wake
    /// `waitpid` sleepers and post SIGCHLD to the parent.
    pub fn exit_process(&self, pid: Pid, status: i32) -> KResult<()> {
        let proc = self.process(pid).ok_or(Errno::ESRCH)?;
        {
            let mut st = proc.state.lock();
            if matches!(*st, ProcState::Zombie(_)) {
                return Err(Errno::ESRCH);
            }
            *st = ProcState::Zombie(status);
        }
        // Close all descriptors, releasing filesystem references. A dup'ed
        // description appears multiple times in the drained list; release
        // its inode only once, when the last clone is dropped.
        let drained = proc.fds.lock().drain();
        for desc in drained {
            if Arc::strong_count(&desc) == 1 {
                if let FileObject::File { fs, ino } = &desc.object {
                    fs.release(*ino);
                }
            }
        }
        if let Some(ppid) = proc.ppid {
            if let Some(parent) = self.process(ppid) {
                parent.signals.post(Signal::SigChld);
            }
        }
        let _guard = self.wait_lock.lock();
        self.child_exited.notify_all();
        Ok(())
    }

    /// Blocking `waitpid`: reap a zombie child of `parent`. With
    /// `Some(target)`, wait for that child specifically. Blocks the calling
    /// OS thread — a *blocking system call* in the paper's sense.
    pub fn waitpid(&self, parent: Pid, target: Option<Pid>) -> KResult<(Pid, i32)> {
        trace::emit(Sysno::Waitpid, SyscallPhase::Enter);
        let out = self.waitpid_inner(parent, target);
        trace::emit(
            Sysno::Waitpid,
            SyscallPhase::Exit {
                errno: errno_of(&out),
            },
        );
        out
    }

    fn waitpid_inner(&self, parent: Pid, target: Option<Pid>) -> KResult<(Pid, i32)> {
        loop {
            {
                let parent_proc = self.process(parent).ok_or(Errno::ESRCH)?;
                if let Some(t) = target {
                    // Targeted fast path: membership and zombie checks are
                    // O(1) against the children set instead of cloning and
                    // scanning it — a root with a million pooled children
                    // reaps each one in constant time.
                    {
                        let kids = parent_proc.children.lock();
                        if kids.is_empty() || !kids.contains(&t) {
                            return Err(Errno::ECHILD);
                        }
                    }
                    if let Some(cp) = self.process(t) {
                        if let ProcState::Zombie(status) = cp.state() {
                            self.procs.lock().remove(&t);
                            parent_proc.children.lock().remove(&t);
                            return Ok((t, status));
                        }
                    }
                } else {
                    let children = parent_proc.children.lock().clone();
                    if children.is_empty() {
                        return Err(Errno::ECHILD);
                    }
                    for &child in &children {
                        if let Some(cp) = self.process(child) {
                            if let ProcState::Zombie(status) = cp.state() {
                                // Reap: remove from table and parent's set.
                                self.procs.lock().remove(&child);
                                parent_proc.children.lock().remove(&child);
                                return Ok((child, status));
                            }
                        }
                    }
                }
            }
            let mut guard = self.wait_lock.lock();
            // Re-check happens at loop top; brief wait avoids lost wakeups.
            self.child_exited
                .wait_for(&mut guard, std::time::Duration::from_millis(50));
        }
    }

    /// Non-blocking variant (`WNOHANG`).
    pub fn try_waitpid(&self, parent: Pid, target: Option<Pid>) -> KResult<Option<(Pid, i32)>> {
        let parent_proc = self.process(parent).ok_or(Errno::ESRCH)?;
        if let Some(t) = target {
            // Targeted fast path (see `waitpid_inner`): O(1) per reap.
            {
                let kids = parent_proc.children.lock();
                if kids.is_empty() {
                    return Err(Errno::ECHILD);
                }
                if !kids.contains(&t) {
                    return Ok(None);
                }
            }
            if let Some(cp) = self.process(t) {
                if let ProcState::Zombie(status) = cp.state() {
                    self.procs.lock().remove(&t);
                    parent_proc.children.lock().remove(&t);
                    return Ok(Some((t, status)));
                }
            }
            return Ok(None);
        }
        let children = parent_proc.children.lock().clone();
        if children.is_empty() {
            return Err(Errno::ECHILD);
        }
        for &child in &children {
            if let Some(cp) = self.process(child) {
                if let ProcState::Zombie(status) = cp.state() {
                    self.procs.lock().remove(&child);
                    parent_proc.children.lock().remove(&child);
                    return Ok(Some((child, status)));
                }
            }
        }
        Ok(None)
    }

    // ----- thread ↔ process binding ----------------------------------------

    /// Bind the calling OS thread to `pid`: subsequent system calls from
    /// this thread execute against that process. Replaces any previous
    /// binding of this thread in this kernel.
    pub fn bind_current(&self, pid: Pid) {
        let id = self.id;
        BINDINGS.with(|b| {
            let mut b = b.borrow_mut();
            if let Some(entry) = b.iter_mut().find(|(k, _)| *k == id) {
                entry.1 = pid;
            } else {
                b.push((id, pid));
            }
        });
    }

    /// Remove the calling OS thread's binding in this kernel.
    pub fn unbind_current(&self) {
        let id = self.id;
        BINDINGS.with(|b| b.borrow_mut().retain(|(k, _)| *k != id));
    }

    /// The process bound to the calling OS thread, if any.
    pub fn current_pid(&self) -> Option<Pid> {
        let id = self.id;
        BINDINGS.with(|b| {
            b.borrow()
                .iter()
                .find(|(k, _)| *k == id)
                .map(|(_, pid)| *pid)
        })
    }

    /// Like [`Kernel::current_pid`] but returns `ESRCH` when unbound —
    /// the common prologue of every system call.
    pub(crate) fn require_current(&self) -> KResult<(Pid, Arc<Process>)> {
        let pid = self.current_pid().ok_or(Errno::ESRCH)?;
        let proc = self.process(pid).ok_or(Errno::ESRCH)?;
        Ok((pid, proc))
    }

    /// Bind for the duration of a scope.
    pub fn bind_scope(self: &Arc<Self>, pid: Pid) -> BindGuard {
        let prev = self.current_pid();
        self.bind_current(pid);
        BindGuard {
            kernel: self.clone(),
            prev,
        }
    }

    // ----- tracing ----------------------------------------------------------

    /// Enable/disable the per-call trace used by consistency audits.
    pub fn set_trace(&self, on: bool) {
        self.trace_enabled.store(on, Ordering::Relaxed);
        if !on {
            self.trace.lock().clear();
        }
    }

    /// Drain the recorded trace.
    pub fn take_trace(&self) -> Vec<TraceEntry> {
        std::mem::take(&mut *self.trace.lock())
    }

    /// Total system calls executed since boot.
    pub fn total_syscalls(&self) -> u64 {
        self.syscall_count.load(Ordering::Relaxed)
    }

    /// The shared filesystem.
    pub fn tmpfs(&self) -> &Tmpfs {
        &self.fs
    }
}

/// Raw errno of a syscall result: `0` on success.
#[inline]
pub(crate) fn errno_of<T>(r: &KResult<T>) -> i32 {
    match r {
        Ok(_) => 0,
        Err(e) => e.as_raw(),
    }
}

/// RAII guard restoring the previous thread binding.
pub struct BindGuard {
    kernel: KernelRef,
    prev: Option<Pid>,
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        match self.prev {
            Some(pid) => self.kernel.bind_current(pid),
            None => self.kernel.unbind_current(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_creates_init() {
        let k = Kernel::native();
        assert_eq!(k.process_count(), 1);
        let init = k.process(Pid(1)).unwrap();
        assert_eq!(*init.name.lock(), "init");
        assert_eq!(init.ppid, None);
    }

    #[test]
    fn spawn_links_parent_child() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "child");
        assert_eq!(child, Pid(2));
        assert_eq!(k.process(Pid(1)).unwrap().children(), vec![child]);
        assert_eq!(k.process(child).unwrap().ppid, Some(Pid(1)));
    }

    #[test]
    fn binding_is_per_thread_and_per_kernel() {
        let k1 = Kernel::native();
        let k2 = Kernel::native();
        let p1 = k1.spawn_process(Some(Pid(1)), "a");
        let p2 = k2.spawn_process(Some(Pid(1)), "b");
        k1.bind_current(p1);
        k2.bind_current(p2);
        assert_eq!(k1.current_pid(), Some(p1));
        assert_eq!(k2.current_pid(), Some(p2));
        // Another thread sees no binding.
        let k1c = k1.clone();
        std::thread::spawn(move || assert_eq!(k1c.current_pid(), None))
            .join()
            .unwrap();
        k1.unbind_current();
        assert_eq!(k1.current_pid(), None);
        assert_eq!(k2.current_pid(), Some(p2));
        k2.unbind_current();
    }

    #[test]
    fn bind_scope_restores() {
        let k = Kernel::native();
        let a = k.spawn_process(Some(Pid(1)), "a");
        let b = k.spawn_process(Some(Pid(1)), "b");
        k.bind_current(a);
        {
            let _g = k.bind_scope(b);
            assert_eq!(k.current_pid(), Some(b));
        }
        assert_eq!(k.current_pid(), Some(a));
        k.unbind_current();
    }

    #[test]
    fn exit_and_waitpid_reap() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "c");
        k.exit_process(child, 7).unwrap();
        let (reaped, status) = k.waitpid(Pid(1), None).unwrap();
        assert_eq!(reaped, child);
        assert_eq!(status, 7);
        assert!(k.process(child).is_none(), "zombie reaped");
        assert_eq!(k.waitpid(Pid(1), None).unwrap_err(), Errno::ECHILD);
    }

    #[test]
    fn waitpid_blocks_until_exit() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "c");
        let k2 = k.clone();
        let waiter = std::thread::spawn(move || k2.waitpid(Pid(1), Some(child)).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        k.exit_process(child, 3).unwrap();
        assert_eq!(waiter.join().unwrap(), (child, 3));
    }

    #[test]
    fn try_waitpid_wnohang() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "c");
        assert_eq!(k.try_waitpid(Pid(1), None).unwrap(), None);
        k.exit_process(child, 0).unwrap();
        assert_eq!(k.try_waitpid(Pid(1), None).unwrap(), Some((child, 0)));
    }

    #[test]
    fn exit_posts_sigchld() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "c");
        k.exit_process(child, 0).unwrap();
        assert!(k
            .process(Pid(1))
            .unwrap()
            .signals
            .pending()
            .contains(Signal::SigChld));
    }

    #[test]
    fn double_exit_is_esrch() {
        let k = Kernel::native();
        let child = k.spawn_process(Some(Pid(1)), "c");
        k.exit_process(child, 0).unwrap();
        assert_eq!(k.exit_process(child, 0).unwrap_err(), Errno::ESRCH);
    }
}
