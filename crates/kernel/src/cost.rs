//! Architecture cost models.
//!
//! The paper's evaluation (Tables III–V) hinges on two architecture-specific
//! costs:
//!
//! - **TLS-register load** — on x86_64 the FS segment register is privileged,
//!   so switching a ULP's TLS region requires an `arch_prctl` system call
//!   (~109 ns / 284 cycles on Wallaby); on AArch64 the `tpidr_el0` register
//!   is user-writable (~2.5 ns on Albireo).
//! - **System-call entry** — `getpid()` takes ~67 ns on Wallaby and ~385 ns
//!   on Albireo.
//!
//! Actually rewriting FS would destroy the host Rust runtime's own TLS, and
//! we have no AArch64 host, so these costs are *injected*: a calibrated busy
//! spin of the measured duration at the points where the real operation would
//! occur. `ArchProfile::Native` injects nothing and reports this host's raw
//! speed.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Which machine's architectural costs to model (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArchProfile {
    /// No cost injection: the raw speed of the host this runs on.
    #[default]
    Native,
    /// Wallaby: x86_64 Xeon E5-2650v2 — TLS load is an `arch_prctl` syscall.
    Wallaby,
    /// Albireo: AArch64 Opteron A1170 — TLS load is a register write.
    Albireo,
}

impl ArchProfile {
    /// Cost of loading the TLS register (paper Table III, "Load TLS").
    pub fn tls_load(&self) -> Duration {
        match self {
            ArchProfile::Native => Duration::ZERO,
            ArchProfile::Wallaby => Duration::from_nanos(109),
            ArchProfile::Albireo => Duration::from_nanos(2),
        }
    }

    /// Cost of entering the kernel for a trivial system call (paper Table V,
    /// "Linux getpid()" row).
    pub fn syscall_entry(&self) -> Duration {
        match self {
            ArchProfile::Native => Duration::ZERO,
            ArchProfile::Wallaby => Duration::from_nanos(67),
            ArchProfile::Albireo => Duration::from_nanos(385),
        }
    }

    /// Reference user-level context-switch cost (paper Table III); used only
    /// for reporting expected values, never injected (our switches are real).
    pub fn reference_ctx_switch(&self) -> Duration {
        match self {
            ArchProfile::Native => Duration::ZERO,
            ArchProfile::Wallaby => Duration::from_nanos(33),
            ArchProfile::Albireo => Duration::from_nanos(24),
        }
    }

    /// Short human-readable profile name (used in reports and logs).
    pub fn name(&self) -> &'static str {
        match self {
            ArchProfile::Native => "native",
            ArchProfile::Wallaby => "wallaby(x86_64)",
            ArchProfile::Albireo => "albireo(aarch64)",
        }
    }
}

/// Read the CPU timestamp counter (x86_64) or a monotonic nanosecond clock.
#[inline]
pub fn cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // AArch64 has no unprivileged cycle counter (the paper makes the
        // same observation for Albireo); fall back to nanoseconds.
        nanos_now()
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn nanos_now() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos() as u64
}

/// Measured timestamp-counter frequency in cycles per nanosecond.
pub fn cycles_per_ns() -> f64 {
    static CAL: OnceLock<f64> = OnceLock::new();
    *CAL.get_or_init(|| {
        let start_c = cycles();
        let start_t = Instant::now();
        // ~2 ms calibration window.
        while start_t.elapsed() < Duration::from_millis(2) {
            std::hint::spin_loop();
        }
        let dc = cycles().wrapping_sub(start_c) as f64;
        let dt = start_t.elapsed().as_nanos() as f64;
        if dt <= 0.0 {
            1.0
        } else {
            (dc / dt).max(0.01)
        }
    })
}

/// Busy-wait for `d`, using the timestamp counter for sub-microsecond
/// precision. `Duration::ZERO` returns immediately (the `Native` fast path).
#[inline]
pub fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let target = (d.as_nanos() as f64 * cycles_per_ns()) as u64;
    let start = cycles();
    while cycles().wrapping_sub(start) < target {
        std::hint::spin_loop();
    }
}

/// Convert a cycle count to nanoseconds using the calibrated frequency.
pub fn cycles_to_ns(c: u64) -> f64 {
    c as f64 / cycles_per_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_profile_is_free() {
        assert_eq!(ArchProfile::Native.tls_load(), Duration::ZERO);
        assert_eq!(ArchProfile::Native.syscall_entry(), Duration::ZERO);
    }

    #[test]
    fn wallaby_tls_is_expensive_albireo_is_not() {
        assert!(ArchProfile::Wallaby.tls_load() > ArchProfile::Albireo.tls_load());
        // Albireo's syscall entry is the slower of the two (Table V).
        assert!(ArchProfile::Albireo.syscall_entry() > ArchProfile::Wallaby.syscall_entry());
    }

    #[test]
    fn spin_for_zero_returns_immediately() {
        let t = Instant::now();
        spin_for(Duration::ZERO);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn spin_for_waits_roughly_right() {
        // Loose bounds: CI machines are noisy; we only need the right order
        // of magnitude for cost injection.
        let d = Duration::from_micros(200);
        let t = Instant::now();
        spin_for(d);
        let e = t.elapsed();
        assert!(e >= Duration::from_micros(100), "spun only {e:?}");
        assert!(e < Duration::from_millis(50), "spun way too long: {e:?}");
    }

    #[test]
    fn cycle_counter_is_monotonic_enough() {
        let a = cycles();
        spin_for(Duration::from_micros(10));
        let b = cycles();
        assert!(b.wrapping_sub(a) > 0);
    }

    #[test]
    fn calibration_is_sane() {
        let f = cycles_per_ns();
        assert!(f > 0.01 && f < 100.0, "cycles/ns = {f}");
    }
}
