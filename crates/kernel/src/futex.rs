//! Raw Linux futex wrapper and a futex-based counting semaphore.
//!
//! The paper idles a decoupled kernel context either by busy-waiting or by
//! blocking on "the Linux semaphore (implemented by using futex)" (§VI-C).
//! This module provides exactly that primitive: [`futex_wait`]/[`futex_wake`]
//! over an `AtomicU32`, and [`Semaphore`] built on top of them, following the
//! construction in *Rust Atomics and Locks*, ch. 8–9.

use crate::errno::Errno;
use crate::fault::{self, FaultKind};
use crate::trace::{self, SyscallPhase, Sysno};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

/// Block until `*atom != expected` (or a spurious wake). Returns immediately
/// if the value already differs.
///
/// Emits a `futex_wait` span through the syscall observer hook: with tracing
/// on, every KC sleep (the BLOCKING idle primitive) shows up on the merged
/// timeline. `futex_wake` is deliberately *not* instrumented — it sits on
/// the couple/notify hot path and never blocks.
#[inline]
pub fn futex_wait(atom: &AtomicU32, expected: u32) {
    trace::emit(Sysno::FutexWait, SyscallPhase::Enter);
    // Injected spurious wake: return as if woken without sleeping. POSIX
    // allows this at any time, so callers must loop on their predicate.
    if !fault::fire(FaultKind::SpuriousWake) {
        futex_wait_raw(atom, expected);
    }
    trace::emit(Sysno::FutexWait, SyscallPhase::Exit { errno: 0 });
}

#[inline]
fn futex_wait_raw(atom: &AtomicU32, expected: u32) {
    #[cfg(target_os = "linux")]
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            atom.as_ptr(),
            libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
            expected,
            std::ptr::null::<libc::timespec>(),
        );
    }
    #[cfg(not(target_os = "linux"))]
    {
        // Portable fallback: yield-spin.
        if atom.load(Ordering::Acquire) == expected {
            std::thread::yield_now();
        }
    }
}

/// Block until `*atom != expected`, a wake-up, or `timeout`. Returns `false`
/// on timeout.
///
/// Emits a `futex_wait` span like [`futex_wait`]; a timed-out wait exits
/// with `errno == ETIMEDOUT`.
pub fn futex_wait_timeout(atom: &AtomicU32, expected: u32, timeout: Duration) -> bool {
    trace::emit(Sysno::FutexWait, SyscallPhase::Enter);
    // An injected spurious wake reports `woken` — indistinguishable from a
    // real wake, exactly as the futex man page warns.
    let woken =
        fault::fire(FaultKind::SpuriousWake) || futex_wait_timeout_raw(atom, expected, timeout);
    let errno = if woken { 0 } else { Errno::ETIMEDOUT.as_raw() };
    trace::emit(Sysno::FutexWait, SyscallPhase::Exit { errno });
    woken
}

fn futex_wait_timeout_raw(atom: &AtomicU32, expected: u32, timeout: Duration) -> bool {
    #[cfg(target_os = "linux")]
    unsafe {
        let ts = libc::timespec {
            tv_sec: timeout.as_secs() as libc::time_t,
            tv_nsec: timeout.subsec_nanos() as libc::c_long,
        };
        let r = libc::syscall(
            libc::SYS_futex,
            atom.as_ptr(),
            libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
            expected,
            &ts as *const libc::timespec,
        );
        if r == -1 {
            *libc::__errno_location() != libc::ETIMEDOUT
        } else {
            true
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = timeout;
        atom.load(Ordering::Acquire) != expected
    }
}

/// Wake at most `n` waiters blocked on `atom`. Returns how many were woken.
#[inline]
pub fn futex_wake(atom: &AtomicU32, n: i32) -> i32 {
    // Injected wakeup delay: widen the sleeper/waker race window so
    // protocols that only work because wakes are "fast enough" break.
    if fault::fire(FaultKind::DelayWake) {
        fault::wake_delay();
    }
    #[cfg(target_os = "linux")]
    unsafe {
        libc::syscall(
            libc::SYS_futex,
            atom.as_ptr(),
            libc::FUTEX_WAKE | libc::FUTEX_PRIVATE_FLAG,
            n,
        ) as i32
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (atom, n);
        0
    }
}

/// A counting semaphore backed by a futex — the paper's BLOCKING idle
/// primitive.
///
/// `wait()` makes the calling *OS thread* sleep in the kernel when the count
/// is zero; this is precisely what makes the blocking variant of ULP-PiP
/// slower than the busy-waiting variant in Table V (two extra futex system
/// calls per couple/decouple round trip) while consuming no CPU.
#[derive(Debug)]
pub struct Semaphore {
    /// Available permits.
    count: AtomicU32,
    /// Number of threads (possibly) asleep in `wait`.
    waiters: AtomicU32,
    /// Wake-edge attribution: stamped by `post` before its `futex_wake`,
    /// consumed by a waiter whose sleep it ended. A spurious wake re-loops
    /// on the permit count without consuming — no permit means no post,
    /// and an unarmed cell emits no edge.
    wake: crate::trace::WakeCell,
}

impl Semaphore {
    /// A semaphore holding `permits` initial permits.
    pub fn new(permits: u32) -> Semaphore {
        Semaphore {
            count: AtomicU32::new(permits),
            waiters: AtomicU32::new(0),
            wake: crate::trace::WakeCell::new(),
        }
    }

    /// Take one permit, blocking the OS thread until one is available.
    pub fn wait(&self) {
        // Fast path: grab a permit without sleeping.
        let mut slept = false;
        let mut current = self.count.load(Ordering::Relaxed);
        loop {
            while current == 0 {
                self.waiters.fetch_add(1, Ordering::Relaxed);
                futex_wait(&self.count, 0);
                slept = true;
                self.waiters.fetch_sub(1, Ordering::Relaxed);
                current = self.count.load(Ordering::Relaxed);
            }
            match self.count.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    if slept {
                        self.wake.consume(crate::trace::WakeSite::FutexWake);
                    }
                    return;
                }
                Err(seen) => current = seen,
            }
        }
    }

    /// Take one permit if immediately available.
    pub fn try_wait(&self) -> bool {
        let mut current = self.count.load(Ordering::Relaxed);
        while current > 0 {
            match self.count.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
        false
    }

    /// Release one permit, waking a sleeper if any.
    pub fn post(&self) {
        // Stamp before the Release store publishing the permit: a waiter
        // that observes the permit also observes the stamp.
        self.wake.stamp();
        self.count.fetch_add(1, Ordering::Release);
        if self.waiters.load(Ordering::Relaxed) > 0 {
            futex_wake(&self.count, 1);
        }
    }

    /// Current permit count (racy; diagnostics only).
    pub fn permits(&self) -> u32 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    #[test]
    fn semaphore_fast_path() {
        let s = Semaphore::new(2);
        s.wait();
        s.wait();
        assert!(!s.try_wait());
        s.post();
        assert!(s.try_wait());
    }

    #[test]
    fn semaphore_blocks_and_wakes() {
        let s = Arc::new(Semaphore::new(0));
        let s2 = s.clone();
        let t = thread::spawn(move || {
            s2.wait();
            42
        });
        thread::sleep(Duration::from_millis(20));
        s.post();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn semaphore_many_producers_consumers() {
        let s = Arc::new(Semaphore::new(0));
        let consumed = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            let consumed = consumed.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    s.wait();
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for _ in 0..4 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    s.post();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 400);
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn futex_wait_returns_when_value_differs() {
        let a = AtomicU32::new(1);
        let t = Instant::now();
        futex_wait(&a, 0); // value != expected -> immediate return
        assert!(t.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn futex_wake_unblocks_waiter() {
        let a = Arc::new(AtomicU32::new(0));
        let a2 = a.clone();
        let t = thread::spawn(move || {
            while a2.load(Ordering::Acquire) == 0 {
                futex_wait(&a2, 0);
            }
        });
        thread::sleep(Duration::from_millis(10));
        a.store(1, Ordering::Release);
        futex_wake(&a, 1);
        t.join().unwrap();
    }

    #[test]
    fn futex_wait_times_out() {
        let a = AtomicU32::new(0);
        let t = Instant::now();
        let woken = futex_wait_timeout(&a, 0, Duration::from_millis(30));
        assert!(!woken, "should have timed out");
        assert!(t.elapsed() >= Duration::from_millis(20));
    }
}
