//! Per-process file-descriptor tables.
//!
//! The FD table is the piece of kernel state at the heart of the paper's
//! *system-call consistency* argument (§I): "If the `open()` system-call is
//! called, then the opened file descriptor is only valid if the KC calling
//! `open()` and the KC calling `read()` are the same." In this simulated
//! kernel each process owns its own table, so a descriptor opened under one
//! kernel context is meaningless (EBADF) under another — exactly the failure
//! mode `couple()`/`decouple()` exists to prevent.

use crate::errno::{Errno, KResult};
use crate::fs::{FileSystem, Ino, OpenFlags};
use crate::pipe::{PipeReader, PipeWriter};
use crate::poll::EpollObject;
use crate::socket::{Listener, SocketEnd};
use parking_lot::Mutex;
use std::sync::Arc;

/// A file descriptor index, per-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub i32);

/// What a descriptor refers to.
///
/// The pipe variants are the descriptors whose `read(2)`/`write(2)` can put
/// the calling kernel context to sleep; those sleeps show up as nested
/// `pipe_block_read`/`pipe_block_write` spans on the trace timeline (see
/// [`crate::trace`]).
#[derive(Debug)]
pub enum FileObject {
    /// A file or directory on a mounted filesystem (tmpfs, procfs, …).
    /// The description pins the filesystem it was opened on, so reads keep
    /// working against the right mount even if the table changes.
    File {
        /// The filesystem the inode lives on.
        fs: Arc<dyn FileSystem>,
        /// The inode within that filesystem.
        ino: Ino,
    },
    /// Read end of a pipe (blocking reads may sleep the calling KC).
    PipeRead(PipeReader),
    /// Write end of a pipe (blocking writes may sleep the calling KC).
    PipeWrite(PipeWriter),
    /// One end of a connected loopback socketpair (bidirectional
    /// byte-stream; blocking reads/writes may sleep the calling KC).
    Socket(SocketEnd),
    /// A listening socket: `accept` pops queued connections, readiness
    /// fires when a client connects.
    Listener(Arc<Listener>),
    /// An epoll instance: an interest list over other descriptors plus the
    /// waker its `epoll_wait` sleeps on.
    Epoll(Arc<EpollObject>),
}

/// An *open file description* (POSIX term): shared offset + flags. `dup`ed
/// descriptors share one description, as on Linux.
#[derive(Debug)]
pub struct Description {
    /// What the description refers to (tmpfs file, pipe end, …).
    pub object: FileObject,
    /// Shared file offset (`lseek`/sequential I/O state).
    pub offset: Mutex<u64>,
    /// The flags the description was opened with.
    pub flags: OpenFlags,
}

/// Shared handle to an open file description (`dup` clones the `Arc`).
pub type DescriptionRef = Arc<Description>;

/// Default per-process descriptor limit (mirrors a typical RLIMIT_NOFILE).
pub const DEFAULT_FD_LIMIT: usize = 1024;

/// A per-process descriptor table.
#[derive(Debug)]
pub struct FdTable {
    slots: Vec<Option<DescriptionRef>>,
    limit: usize,
}

impl FdTable {
    /// An empty table with the default descriptor limit.
    pub fn new() -> FdTable {
        FdTable {
            slots: Vec::new(),
            limit: DEFAULT_FD_LIMIT,
        }
    }

    /// Install a description in the lowest free slot (POSIX allocation rule).
    pub fn install(&mut self, desc: DescriptionRef) -> KResult<Fd> {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(desc);
                return Ok(Fd(i as i32));
            }
        }
        if self.slots.len() >= self.limit {
            return Err(Errno::EMFILE);
        }
        self.slots.push(Some(desc));
        Ok(Fd((self.slots.len() - 1) as i32))
    }

    /// Resolve `fd` to its description (`EBADF` for empty/invalid slots).
    pub fn get(&self, fd: Fd) -> KResult<DescriptionRef> {
        if fd.0 < 0 {
            return Err(Errno::EBADF);
        }
        self.slots
            .get(fd.0 as usize)
            .and_then(|s| s.clone())
            .ok_or(Errno::EBADF)
    }

    /// Remove a descriptor, returning its description so the caller can
    /// release filesystem resources.
    pub fn remove(&mut self, fd: Fd) -> KResult<DescriptionRef> {
        if fd.0 < 0 {
            return Err(Errno::EBADF);
        }
        self.slots
            .get_mut(fd.0 as usize)
            .and_then(|s| s.take())
            .ok_or(Errno::EBADF)
    }

    /// `dup(2)`: new descriptor sharing the same description.
    pub fn dup(&mut self, fd: Fd) -> KResult<Fd> {
        let desc = self.get(fd)?;
        self.install(desc)
    }

    /// `dup2(2)`: duplicate onto a specific slot, closing what was there.
    /// Returns the previous occupant (if any) so the caller can release it.
    pub fn dup2(&mut self, fd: Fd, newfd: Fd) -> KResult<Option<DescriptionRef>> {
        if newfd.0 < 0 || newfd.0 as usize >= self.limit {
            return Err(Errno::EBADF);
        }
        let desc = self.get(fd)?;
        if fd == newfd {
            return Ok(None);
        }
        let idx = newfd.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].take();
        self.slots[idx] = Some(desc);
        Ok(old)
    }

    /// Number of live descriptors.
    pub fn open_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Drain every descriptor (process exit). Returns the descriptions so
    /// the kernel can release inode references.
    pub fn drain(&mut self) -> Vec<DescriptionRef> {
        self.slots.iter_mut().filter_map(|s| s.take()).collect()
    }
}

impl Default for FdTable {
    fn default() -> Self {
        FdTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_desc(ino: u64) -> DescriptionRef {
        let fs: Arc<dyn FileSystem> = Arc::new(crate::fs::Tmpfs::new());
        Arc::new(Description {
            object: FileObject::File { fs, ino: Ino(ino) },
            offset: Mutex::new(0),
            flags: OpenFlags::RDWR,
        })
    }

    #[test]
    fn lowest_free_slot_allocation() {
        let mut t = FdTable::new();
        let a = t.install(file_desc(1)).unwrap();
        let b = t.install(file_desc(2)).unwrap();
        let c = t.install(file_desc(3)).unwrap();
        assert_eq!((a, b, c), (Fd(0), Fd(1), Fd(2)));
        t.remove(b).unwrap();
        let d = t.install(file_desc(4)).unwrap();
        assert_eq!(d, Fd(1), "freed slot must be reused first");
    }

    #[test]
    fn get_after_remove_is_ebadf() {
        let mut t = FdTable::new();
        let fd = t.install(file_desc(1)).unwrap();
        t.remove(fd).unwrap();
        assert_eq!(t.get(fd).unwrap_err(), Errno::EBADF);
        assert_eq!(t.remove(fd).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn negative_fd_is_ebadf() {
        let t = FdTable::new();
        assert_eq!(t.get(Fd(-1)).unwrap_err(), Errno::EBADF);
    }

    #[test]
    fn dup_shares_description() {
        let mut t = FdTable::new();
        let fd = t.install(file_desc(9)).unwrap();
        let dup = t.dup(fd).unwrap();
        assert_ne!(fd, dup);
        let a = t.get(fd).unwrap();
        let b = t.get(dup).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Offset is shared through the description.
        *a.offset.lock() = 77;
        assert_eq!(*b.offset.lock(), 77);
    }

    #[test]
    fn dup2_replaces_and_returns_old() {
        let mut t = FdTable::new();
        let a = t.install(file_desc(1)).unwrap();
        let b = t.install(file_desc(2)).unwrap();
        let old = t.dup2(a, b).unwrap().expect("b was occupied");
        assert!(matches!(old.object, FileObject::File { ino: Ino(2), .. }));
        let now = t.get(b).unwrap();
        assert!(Arc::ptr_eq(&now, &t.get(a).unwrap()));
    }

    #[test]
    fn dup2_same_fd_is_noop() {
        let mut t = FdTable::new();
        let a = t.install(file_desc(1)).unwrap();
        assert!(t.dup2(a, a).unwrap().is_none());
        assert!(t.get(a).is_ok());
    }

    #[test]
    fn dup2_extends_table() {
        let mut t = FdTable::new();
        let a = t.install(file_desc(1)).unwrap();
        t.dup2(a, Fd(10)).unwrap();
        assert!(t.get(Fd(10)).is_ok());
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn drain_empties_table() {
        let mut t = FdTable::new();
        for i in 0..5 {
            t.install(file_desc(i)).unwrap();
        }
        let drained = t.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(t.open_count(), 0);
    }

    #[test]
    fn fd_limit_enforced() {
        let mut t = FdTable::new();
        t.limit = 3;
        t.install(file_desc(0)).unwrap();
        t.install(file_desc(1)).unwrap();
        t.install(file_desc(2)).unwrap();
        assert_eq!(t.install(file_desc(3)).unwrap_err(), Errno::EMFILE);
    }
}
