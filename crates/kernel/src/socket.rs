//! In-kernel loopback stream sockets and listeners.
//!
//! A socket pair (see [`socketpair`]) is the loopback analogue of
//! `socketpair(AF_UNIX, SOCK_STREAM)`: two independent byte-stream directions
//! between two ends, each direction a bounded buffer with the same blocking
//! discipline as [`mod@crate::pipe`] — `read` on an empty direction and `write` on a full one
//! park the calling OS thread, which is exactly the class of call the
//! paper's `couple()`/`decouple()` protocol exists to make safe (§V-B).
//!
//! On top of it, a [`Listener`] gives client and server ULPs a rendezvous
//! point: `connect` manufactures a fresh socketpair, queues the server half
//! on the listener's accept queue, and hands the client half back — the
//! server's `accept` (usually driven by an epoll readiness edge on the
//! listener) pops its half. This is the minimal shape of the classic
//! threaded-server runtime the SR port describes: one acceptor multiplexing
//! many per-connection streams.
//!
//! ## Backpressure watermark
//!
//! Write *readiness* is gated by a low watermark ([`SOCK_LOWAT`] fraction of
//! capacity): `POLLOUT` is reported only when at least that much space is
//! free. Blocking writes still proceed whenever *any* space exists — the
//! watermark shapes what epoll reports, not what `write` does — so a
//! readiness-driven writer coalesces its wakeups into watermark-sized
//! batches instead of being woken once per drained byte.

use crate::errno::{Errno, KResult};
use crate::fault::{self, FaultKind};
use crate::kernel::errno_of;
use crate::poll::{PollEvents, WatchSet};
use crate::trace::{self, SyscallPhase, Sysno, WakeCell, WakeSite};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default per-direction buffer capacity (half a pipe: sockets carry
/// request/response frames, not bulk streams).
pub const SOCK_CAPACITY: usize = 32 * 1024;

/// Low-watermark divisor for write readiness: `POLLOUT` is reported when at
/// least `capacity / SOCK_LOWAT` bytes are free.
pub const SOCK_LOWAT: usize = 4;

/// One direction of a socketpair: a bounded byte buffer plus the two
/// condvars of the blocking discipline.
#[derive(Debug)]
struct SockBuf {
    buf: Mutex<VecDeque<u8>>,
    readable: Condvar,
    writable: Condvar,
    /// Wake-edge attribution cells for the two condvars, stamped by
    /// whoever fires them (see [`crate::pipe`] for the discipline).
    wake_read: WakeCell,
    wake_write: WakeCell,
}

impl SockBuf {
    fn new(capacity: usize) -> SockBuf {
        SockBuf {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(SOCK_CAPACITY))),
            readable: Condvar::new(),
            writable: Condvar::new(),
            wake_read: WakeCell::new(),
            wake_write: WakeCell::new(),
        }
    }
}

/// The shared state of a connected socketpair. `bufs[side]` carries bytes
/// *written by* end `side` (read by the peer); `ends[side]` counts the live
/// handles to end `side`, so either end can detect peer close.
#[derive(Debug)]
struct SockPair {
    bufs: [SockBuf; 2],
    ends: [AtomicUsize; 2],
    capacity: usize,
    /// One watch set for the whole pair: every state change on either
    /// direction fires it. Level-triggered waiters re-scan their own end's
    /// state, so over-notification is harmless and this stays one list.
    watch: WatchSet,
}

/// One end of a connected socketpair. `Clone` duplicates the handle (like
/// `dup(2)` on the raw object); dropping the last handle to an end is what
/// the peer observes as EOF/EPIPE/HUP.
#[derive(Debug)]
pub struct SocketEnd {
    pair: Arc<SockPair>,
    side: usize,
}

/// Create a connected socketpair with the given per-direction capacity.
pub fn socketpair_with_capacity(capacity: usize) -> (SocketEnd, SocketEnd) {
    let capacity = capacity.max(SOCK_LOWAT);
    let pair = Arc::new(SockPair {
        bufs: [SockBuf::new(capacity), SockBuf::new(capacity)],
        ends: [AtomicUsize::new(1), AtomicUsize::new(1)],
        capacity,
        watch: WatchSet::new(),
    });
    (
        SocketEnd {
            pair: pair.clone(),
            side: 0,
        },
        SocketEnd { pair, side: 1 },
    )
}

/// Create a connected socketpair with the default capacity.
pub fn socketpair() -> (SocketEnd, SocketEnd) {
    socketpair_with_capacity(SOCK_CAPACITY)
}

impl Clone for SocketEnd {
    fn clone(&self) -> Self {
        self.pair.ends[self.side].fetch_add(1, Ordering::Relaxed);
        SocketEnd {
            pair: self.pair.clone(),
            side: self.side,
        }
    }
}

impl Drop for SocketEnd {
    fn drop(&mut self) {
        if self.pair.ends[self.side].fetch_sub(1, Ordering::AcqRel) == 1 {
            // Peer must observe EOF (its reads) and EPIPE (its writes):
            // wake both directions and every readiness waiter.
            self.pair.bufs[self.side].wake_read.stamp();
            self.pair.bufs[self.side].readable.notify_all();
            self.pair.bufs[1 - self.side].wake_write.stamp();
            self.pair.bufs[1 - self.side].writable.notify_all();
            self.pair.watch.notify();
        }
    }
}

impl SocketEnd {
    /// Bytes this end has written go into its own buffer...
    fn tx(&self) -> &SockBuf {
        &self.pair.bufs[self.side]
    }

    /// ...and bytes it reads come from the peer's.
    fn rx(&self) -> &SockBuf {
        &self.pair.bufs[1 - self.side]
    }

    fn peer_gone(&self) -> bool {
        self.pair.ends[1 - self.side].load(Ordering::Acquire) == 0
    }

    /// The pair-wide watch set (both ends share it).
    pub fn watch(&self) -> &WatchSet {
        &self.pair.watch
    }

    /// Blocking read from the peer direction: waits for at least one byte,
    /// returns 0 at EOF (peer closed, buffer drained). Sleeps are bracketed
    /// by a `sock_block_read` span, mirroring the pipe path; the same
    /// fault-plan hooks apply (`EINTR` before any bytes move, short reads
    /// truncated to one byte).
    pub fn read(&self, out: &mut [u8]) -> KResult<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        if fault::fire(FaultKind::Eintr) {
            return Err(Errno::EINTR);
        }
        let out = if out.len() > 1 && fault::fire(FaultKind::ShortRead) {
            &mut out[..1]
        } else {
            out
        };
        let rx = self.rx();
        let mut buf = rx.buf.lock();
        let mut blocked = false;
        let res = loop {
            if !buf.is_empty() {
                let n = out.len().min(buf.len());
                for slot in out[..n].iter_mut() {
                    *slot = buf.pop_front().expect("len checked");
                }
                rx.wake_write.stamp();
                rx.writable.notify_all();
                drop(buf);
                self.pair.watch.notify();
                break Ok(n);
            }
            if self.peer_gone() {
                break Ok(0); // EOF
            }
            if !blocked {
                blocked = true;
                trace::emit(Sysno::SockBlockRead, SyscallPhase::Enter);
            }
            rx.readable.wait(&mut buf);
        };
        if blocked {
            rx.wake_read.consume(WakeSite::SockRead);
            trace::emit(
                Sysno::SockBlockRead,
                SyscallPhase::Exit {
                    errno: errno_of(&res),
                },
            );
        }
        res
    }

    /// Blocking write of the whole buffer into this end's direction; sleeps
    /// whenever the direction is full, `EPIPE` once the peer is gone and
    /// nothing was written. Sleeps are bracketed by a `sock_block_write`
    /// span.
    pub fn write(&self, data: &[u8]) -> KResult<usize> {
        if fault::fire(FaultKind::Eintr) {
            return Err(Errno::EINTR);
        }
        let tx = self.tx();
        let mut written = 0;
        let mut buf = tx.buf.lock();
        let mut blocked = false;
        let res = loop {
            if written >= data.len() {
                break Ok(written);
            }
            if self.peer_gone() {
                break if written > 0 {
                    Ok(written)
                } else {
                    Err(Errno::EPIPE)
                };
            }
            let space = self.pair.capacity.saturating_sub(buf.len());
            if space == 0 {
                if !blocked {
                    blocked = true;
                    trace::emit(Sysno::SockBlockWrite, SyscallPhase::Enter);
                }
                tx.writable.wait(&mut buf);
                continue;
            }
            let n = space.min(data.len() - written);
            buf.extend(&data[written..written + n]);
            written += n;
            tx.wake_read.stamp();
            tx.readable.notify_all();
        };
        if written > 0 {
            drop(buf);
            self.pair.watch.notify();
        }
        if blocked {
            tx.wake_write.consume(WakeSite::SockWrite);
            trace::emit(
                Sysno::SockBlockWrite,
                SyscallPhase::Exit {
                    errno: errno_of(&res),
                },
            );
        }
        res
    }

    /// Current readiness of this end (level-triggered snapshot):
    /// - `IN` — peer-direction bytes buffered, or peer closed (EOF is
    ///   readable);
    /// - `OUT` — at least the low watermark of this direction is free and
    ///   the peer is alive;
    /// - `HUP` — peer closed.
    pub fn poll_events(&self) -> PollEvents {
        let mut ev = PollEvents::NONE;
        let rx_len = self.rx().buf.lock().len();
        let peer_gone = self.peer_gone();
        if rx_len > 0 || peer_gone {
            ev = ev | PollEvents::IN;
        }
        if peer_gone {
            ev = ev | PollEvents::HUP;
        } else {
            let tx_len = self.tx().buf.lock().len();
            let lowat = self.pair.capacity / SOCK_LOWAT;
            if self.pair.capacity - tx_len >= lowat.max(1) {
                ev = ev | PollEvents::OUT;
            }
        }
        ev
    }

    /// Bytes buffered toward this end (readable without blocking).
    pub fn available(&self) -> usize {
        self.rx().buf.lock().len()
    }
}

/// Default accept-queue depth (mirrors a typical `listen(2)` backlog).
pub const LISTEN_BACKLOG: usize = 128;

/// A rendezvous point between connecting clients and an accepting server.
///
/// Created raw (like [`crate::pipe::pipe`]'s ends) and shared across ULPs
/// by `Arc`; `Kernel::sys_listen` installs it into a process FD table so a
/// server can watch it with epoll, and `Kernel::sys_connect` resolves it
/// directly from the client's `Arc`.
#[derive(Debug)]
pub struct Listener {
    queue: Mutex<VecDeque<SocketEnd>>,
    pending: Condvar,
    backlog: usize,
    watch: WatchSet,
    /// Wake-edge attribution for blocked acceptors: stamped by the
    /// connecting client, consumed by the acceptor it woke.
    wake: WakeCell,
}

impl Listener {
    /// A fresh listener with the default backlog.
    pub fn new() -> Arc<Listener> {
        Listener::with_backlog(LISTEN_BACKLOG)
    }

    /// A fresh listener with an explicit backlog bound.
    pub fn with_backlog(backlog: usize) -> Arc<Listener> {
        Arc::new(Listener {
            queue: Mutex::new(VecDeque::new()),
            pending: Condvar::new(),
            backlog: backlog.max(1),
            watch: WatchSet::new(),
            wake: WakeCell::new(),
        })
    }

    /// Client half of connection establishment: manufacture a socketpair,
    /// queue the server half, return the client half. `EAGAIN` when the
    /// backlog is full (the simulated kernel refuses rather than blocks,
    /// like a non-blocking `connect` against a saturated listen queue).
    pub fn connect(&self) -> KResult<SocketEnd> {
        let (client, server) = socketpair();
        let mut q = self.queue.lock();
        if q.len() >= self.backlog {
            return Err(Errno::EAGAIN);
        }
        q.push_back(server);
        self.wake.stamp();
        self.pending.notify_one();
        drop(q);
        self.watch.notify();
        Ok(client)
    }

    /// Blocking accept: pop the next queued connection, parking the calling
    /// OS thread while the queue is empty. Sleeps are bracketed by an
    /// `accept_block` span; the fault plan may inject `EINTR` before a
    /// connection is taken.
    pub fn accept(&self) -> KResult<SocketEnd> {
        if fault::fire(FaultKind::Eintr) {
            return Err(Errno::EINTR);
        }
        let mut q = self.queue.lock();
        let mut blocked = false;
        let res = loop {
            if let Some(end) = q.pop_front() {
                break Ok(end);
            }
            if !blocked {
                blocked = true;
                trace::emit(Sysno::AcceptBlock, SyscallPhase::Enter);
            }
            self.pending.wait(&mut q);
        };
        if blocked {
            self.wake.consume(WakeSite::Accept);
            trace::emit(
                Sysno::AcceptBlock,
                SyscallPhase::Exit {
                    errno: errno_of(&res),
                },
            );
        }
        res
    }

    /// Non-blocking accept: `EAGAIN` instead of sleeping.
    pub fn try_accept(&self) -> KResult<SocketEnd> {
        if fault::fire(FaultKind::Eagain) {
            return Err(Errno::EAGAIN);
        }
        self.queue.lock().pop_front().ok_or(Errno::EAGAIN)
    }

    /// Current readiness: `IN` when a connection is queued.
    pub fn poll_events(&self) -> PollEvents {
        if self.queue.lock().is_empty() {
            PollEvents::NONE
        } else {
            PollEvents::IN
        }
    }

    /// Queued, not-yet-accepted connections.
    pub fn pending_count(&self) -> usize {
        self.queue.lock().len()
    }

    /// The listener's watch set (readiness edges fire on connect).
    pub fn watch(&self) -> &WatchSet {
        &self.watch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn byte_stream_roundtrip_both_directions() {
        let (a, b) = socketpair();
        assert_eq!(a.write(b"ping").unwrap(), 4);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
        assert_eq!(b.write(b"pong!").unwrap(), 5);
        assert_eq!(a.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"pong!");
    }

    #[test]
    fn directions_are_independent() {
        let (a, b) = socketpair_with_capacity(4);
        assert_eq!(a.write(b"abcd").unwrap(), 4); // a→b full
        assert_eq!(b.write(b"wxyz").unwrap(), 4); // b→a unaffected
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf, b"wxyz");
    }

    #[test]
    fn read_blocks_until_peer_writes() {
        let (a, b) = socketpair();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 4];
            let n = a.read(&mut buf).unwrap();
            (n, buf)
        });
        thread::sleep(Duration::from_millis(20));
        b.write(b"ok").unwrap();
        let (n, buf) = t.join().unwrap();
        assert_eq!(n, 2);
        assert_eq!(&buf[..2], b"ok");
    }

    #[test]
    fn write_blocks_when_direction_full() {
        let (a, b) = socketpair_with_capacity(4);
        assert_eq!(a.write(b"abcd").unwrap(), 4);
        let t = thread::spawn(move || a.write(b"ef").unwrap());
        thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 4];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(t.join().unwrap(), 2);
        assert_eq!(b.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn eof_and_epipe_after_peer_drop() {
        let (a, b) = socketpair();
        a.write(b"tail").unwrap();
        drop(a);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 4);
        assert_eq!(b.read(&mut buf).unwrap(), 0, "EOF expected");
        assert_eq!(b.write(b"x").unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn clone_keeps_end_alive() {
        let (a, b) = socketpair();
        let a2 = a.clone();
        drop(a);
        a2.write(b"via clone").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(b.read(&mut buf).unwrap(), 9);
        drop(a2);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn readiness_tracks_buffer_and_peer() {
        let (a, b) = socketpair_with_capacity(8);
        assert_eq!(a.poll_events(), PollEvents::OUT, "idle end: writable only");
        b.write(b"hi").unwrap();
        assert!(a.poll_events().contains(PollEvents::IN));
        drop(b);
        let ev = a.poll_events();
        assert!(ev.contains(PollEvents::IN), "EOF is readable");
        assert!(ev.contains(PollEvents::HUP));
        assert!(!ev.contains(PollEvents::OUT));
    }

    #[test]
    fn out_readiness_respects_watermark() {
        let (a, _b) = socketpair_with_capacity(8);
        // lowat = 2; fill to 7/8 → 1 byte free < lowat → not writable.
        a.write(b"1234567").unwrap();
        assert!(!a.poll_events().contains(PollEvents::OUT));
    }

    #[test]
    fn listener_connect_accept_roundtrip() {
        let l = Listener::new();
        assert_eq!(l.poll_events(), PollEvents::NONE);
        let client = l.connect().unwrap();
        assert_eq!(l.poll_events(), PollEvents::IN);
        let server = l.accept().unwrap();
        client.write(b"hello").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn listener_backlog_refuses_overflow() {
        let l = Listener::with_backlog(2);
        let _c1 = l.connect().unwrap();
        let _c2 = l.connect().unwrap();
        assert_eq!(l.connect().unwrap_err(), Errno::EAGAIN);
        let _s = l.accept().unwrap();
        assert!(l.connect().is_ok(), "accept frees a backlog slot");
    }

    #[test]
    fn accept_blocks_until_connect() {
        let l = Listener::new();
        let l2 = l.clone();
        let t = thread::spawn(move || l2.accept().unwrap());
        thread::sleep(Duration::from_millis(20));
        let client = l.connect().unwrap();
        let server = t.join().unwrap();
        client.write(b"x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(server.read(&mut buf).unwrap(), 1);
    }
}
