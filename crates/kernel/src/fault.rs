//! Deterministic kernel fault injection.
//!
//! Real kernels are adversarial in ways a clean simulation never is: futexes
//! wake spuriously, blocking calls return `EINTR` mid-wait, `read(2)` hands
//! back one byte when sixty-four were available, and wakeups arrive late.
//! POSIX permits all of it, and the paper's coupling protocol must tolerate
//! all of it. This module lets the `ulp-torture` harness switch those
//! behaviors on, reproducibly, inside the simulated kernel:
//!
//! - **spurious futex wakes** — `futex_wait`/`futex_wait_timeout` return
//!   immediately as if woken; callers that don't re-check their predicate
//!   (the classic lost-wakeup bug) break instantly;
//! - **`EINTR`** on blocking pipe `read`/`write`, before any bytes move;
//! - **`EAGAIN`** on the non-blocking `try_read`/`try_write` paths;
//! - **short reads** — a pipe read is truncated to a single byte even when
//!   more is buffered;
//! - **delayed wakeups** — `futex_wake` stalls briefly before waking, so
//!   sleepers and their wakers race over a widened window.
//!
//! Decisions come from the same splitmix64 construction as
//! `ulp_core::chaos`, keyed by `(kind, currently bound pid)` with a per-key
//! opportunity counter, so each process's fault stream replays identically
//! regardless of how other threads interleave. A disarmed layer costs one
//! relaxed atomic load per hook.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A seeded fault recipe: how often (per 1024 opportunities) each fault
/// fires. All-zero rates make an armed plan a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the decision stream; same seed + same workload = same
    /// faults.
    pub seed: u64,
    /// Rate (per 1024) of spurious `futex_wait` returns.
    pub spurious_wake_per_1024: u16,
    /// Rate (per 1024) of `EINTR` on blocking pipe reads/writes.
    pub eintr_per_1024: u16,
    /// Rate (per 1024) of `EAGAIN` on non-blocking pipe reads/writes.
    pub eagain_per_1024: u16,
    /// Rate (per 1024) of pipe reads truncated to one byte.
    pub short_read_per_1024: u16,
    /// Rate (per 1024) of delayed `futex_wake` calls.
    pub delay_wake_per_1024: u16,
}

impl FaultPlan {
    /// A gentle plan: rare faults, suitable for long runs.
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            spurious_wake_per_1024: 16,
            eintr_per_1024: 16,
            eagain_per_1024: 16,
            short_read_per_1024: 32,
            delay_wake_per_1024: 8,
        }
    }

    /// An aggressive plan: roughly one in eight opportunities faulted.
    pub fn aggressive(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            spurious_wake_per_1024: 128,
            eintr_per_1024: 128,
            eagain_per_1024: 128,
            short_read_per_1024: 256,
            delay_wake_per_1024: 64,
        }
    }
}

/// Which fault a hook is asking about (also indexes [`injected_counts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FaultKind {
    /// Spurious return from `futex_wait`/`futex_wait_timeout`.
    SpuriousWake = 0,
    /// `EINTR` from a blocking pipe read/write.
    Eintr = 1,
    /// `EAGAIN` from a non-blocking pipe read/write.
    Eagain = 2,
    /// Pipe read truncated to a single byte.
    ShortRead = 3,
    /// `futex_wake` delayed before delivering the wake.
    DelayWake = 4,
}

/// The number of [`FaultKind`] variants (size of [`injected_counts`]).
pub const FAULT_KINDS: usize = 5;

struct FaultState {
    plan: FaultPlan,
    /// Per-(kind, pid-key) opportunity counters: each process's stream for
    /// each kind is independent and interleaving-proof.
    counters: HashMap<(u8, u64), u64>,
    injected: [u64; FAULT_KINDS],
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<FaultState>> = Mutex::new(None);

/// splitmix64 finalizer — duplicated from `ulp_core::chaos` (the dependency
/// points the other way) and pinned by test to the same output.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install `plan` process-wide and reset all decision counters. Fault state
/// is global (the hooks sit below any `Kernel` handle), so harness
/// iterations must serialize arm/disarm.
pub fn arm(plan: FaultPlan) {
    let mut st = STATE.lock().expect("fault state poisoned");
    *st = Some(FaultState {
        plan,
        counters: HashMap::new(),
        injected: [0; FAULT_KINDS],
    });
    ARMED.store(true, Ordering::Release);
}

/// Remove the installed plan; every hook returns to its one-load fast path.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *STATE.lock().expect("fault state poisoned") = None;
}

/// Whether a plan is currently installed.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Acquire)
}

/// How many faults of each [`FaultKind`] were actually injected since
/// [`arm`].
pub fn injected_counts() -> [u64; FAULT_KINDS] {
    STATE
        .lock()
        .expect("fault state poisoned")
        .as_ref()
        .map_or([0; FAULT_KINDS], |s| s.injected)
}

/// Hook: should this opportunity inject `kind`? Keyed by the calling
/// thread's currently bound pid (0 when unbound) so each simulated process
/// draws an independent, replayable stream. One relaxed load when disarmed.
#[inline]
pub(crate) fn fire(kind: FaultKind) -> bool {
    if !is_armed() {
        return false;
    }
    fire_slow(kind)
}

#[cold]
fn fire_slow(kind: FaultKind) -> bool {
    let key = crate::kernel::any_bound_pid().map_or(0, |p| u64::from(p.0) + 1);
    let mut guard = STATE.lock().expect("fault state poisoned");
    let Some(st) = guard.as_mut() else {
        return false;
    };
    let rate = match kind {
        FaultKind::SpuriousWake => st.plan.spurious_wake_per_1024,
        FaultKind::Eintr => st.plan.eintr_per_1024,
        FaultKind::Eagain => st.plan.eagain_per_1024,
        FaultKind::ShortRead => st.plan.short_read_per_1024,
        FaultKind::DelayWake => st.plan.delay_wake_per_1024,
    };
    if rate == 0 {
        return false;
    }
    let n = st.counters.entry((kind as u8, key)).or_insert(0);
    *n += 1;
    let draw = mix64(st.plan.seed ^ mix64(key ^ ((kind as u64) << 56)) ^ mix64(*n));
    let fire = (draw & 1023) < u64::from(rate);
    if fire {
        st.injected[kind as usize] += 1;
    }
    fire
}

/// Fault-induced wake delay: long enough to widen sleeper/waker races, short
/// enough that even a fault-heavy run stays fast.
pub(crate) fn wake_delay() {
    std::thread::sleep(std::time::Duration::from_micros(50));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; tests that arm it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_hooks_are_inert() {
        let _g = TEST_LOCK.lock().unwrap();
        disarm();
        assert!(!is_armed());
        assert!(!fire(FaultKind::Eintr));
        assert_eq!(injected_counts(), [0; FAULT_KINDS]);
    }

    #[test]
    fn decisions_replay_across_arms() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = FaultPlan::aggressive(0xDECAF);
        arm(plan);
        let run1: Vec<bool> = (0..128).map(|_| fire(FaultKind::ShortRead)).collect();
        arm(plan);
        let run2: Vec<bool> = (0..128)
            .map(|i| {
                // Interleave draws of another kind: must not disturb the
                // ShortRead stream.
                if i % 3 == 0 {
                    fire(FaultKind::DelayWake);
                }
                fire(FaultKind::ShortRead)
            })
            .collect();
        disarm();
        assert_eq!(run1, run2, "per-kind streams must be interleaving-proof");
        assert!(run1.iter().any(|&f| f), "aggressive plan never fired");
        assert!(run1.iter().any(|&f| !f), "aggressive plan always fired");
    }

    #[test]
    fn injected_counts_track_fires() {
        let _g = TEST_LOCK.lock().unwrap();
        arm(FaultPlan {
            seed: 1,
            spurious_wake_per_1024: 1024,
            eintr_per_1024: 0,
            eagain_per_1024: 0,
            short_read_per_1024: 0,
            delay_wake_per_1024: 0,
        });
        for _ in 0..7 {
            assert!(fire(FaultKind::SpuriousWake));
        }
        assert!(!fire(FaultKind::Eintr), "zero rate never fires");
        let injected = injected_counts();
        disarm();
        assert_eq!(injected[FaultKind::SpuriousWake as usize], 7);
        assert_eq!(injected[FaultKind::Eintr as usize], 0);
    }

    #[test]
    fn mix64_matches_chaos_splitmix() {
        // Pinned to the same vector as ulp_core::chaos::splitmix64 so the
        // two decision layers stay seed-compatible.
        assert_eq!(mix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn unbound_thread_draws_key_zero_stream() {
        let _g = TEST_LOCK.lock().unwrap();
        let plan = FaultPlan::aggressive(42);
        arm(plan);
        let a: Vec<bool> = (0..64).map(|_| fire(FaultKind::Eagain)).collect();
        arm(plan);
        let b: Vec<bool> = (0..64).map(|_| fire(FaultKind::Eagain)).collect();
        disarm();
        assert_eq!(a, b);
    }
}
