//! Per-process signal state.
//!
//! The paper's §VII notes a system-call-consistency gap in ULP-PiP:
//! fcontext does not save/restore signal masks, so "if one tries to send a
//! signal to a UC, then the signal is delivered to the scheduling KC". This
//! module models the per-process mask/pending machinery so that gap is
//! *observable* in tests, and so the `ucontext`-style opt-in (saving masks on
//! every switch, at extra cost) can be implemented and measured.

use crate::errno::{Errno, KResult};
use parking_lot::Mutex;

/// The small signal vocabulary the simulation needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Signal {
    /// Interrupt (Ctrl-C "via a terminal" — the paper's example of a signal
    /// that cannot be intercepted by wrapping `kill()`).
    SigInt = 2,
    /// User-defined signal 1.
    SigUsr1 = 10,
    /// User-defined signal 2.
    SigUsr2 = 12,
    /// Termination request.
    SigTerm = 15,
    /// Child stopped or terminated.
    SigChld = 17,
}

/// Every signal the simulated kernel models, in delivery-priority order.
pub const ALL_SIGNALS: [Signal; 5] = [
    Signal::SigInt,
    Signal::SigUsr1,
    Signal::SigUsr2,
    Signal::SigTerm,
    Signal::SigChld,
];

impl Signal {
    #[inline]
    fn bit(self) -> u32 {
        1u32 << (self as u8)
    }
}

/// A signal set (mask or pending set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SigSet(u32);

impl SigSet {
    /// The empty set.
    pub const EMPTY: SigSet = SigSet(0);

    /// Build a set containing exactly `signals`.
    pub fn with(signals: &[Signal]) -> SigSet {
        let mut s = SigSet::EMPTY;
        for &sig in signals {
            s.add(sig);
        }
        s
    }

    /// Add `sig` to the set.
    #[inline]
    pub fn add(&mut self, sig: Signal) {
        self.0 |= sig.bit();
    }

    /// Remove `sig` from the set.
    #[inline]
    pub fn remove(&mut self, sig: Signal) {
        self.0 &= !sig.bit();
    }

    /// Whether `sig` is in the set.
    #[inline]
    pub fn contains(&self, sig: Signal) -> bool {
        self.0 & sig.bit() != 0
    }

    /// Whether no signal is in the set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate the member signals in [`ALL_SIGNALS`] order.
    pub fn iter(&self) -> impl Iterator<Item = Signal> + '_ {
        ALL_SIGNALS.iter().copied().filter(|s| self.contains(*s))
    }

    /// Raw bit representation — lets callers store a mask in an atomic and
    /// compare masks without interpreting them.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Rebuild a set from [`SigSet::bits`].
    #[inline]
    pub const fn from_bits(bits: u32) -> SigSet {
        SigSet(bits)
    }
}

/// How `sigprocmask` modifies the mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskHow {
    /// Add the set to the mask (`SIG_BLOCK`).
    Block,
    /// Remove the set from the mask (`SIG_UNBLOCK`).
    Unblock,
    /// Replace the mask with the set (`SIG_SETMASK`).
    SetMask,
}

/// What a process does with a delivered signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Default action (terminate for most; ignore for SIGCHLD).
    #[default]
    Default,
    /// Discard the signal (`SIG_IGN`).
    Ignore,
    /// A registered handler; the u64 is an opaque handler token the runtime
    /// maps back to a closure.
    Handler(u64),
}

/// Per-process signal state.
#[derive(Debug, Default)]
pub struct SignalState {
    inner: Mutex<SignalInner>,
    /// Wake-edge attribution: stamped by `post` (the sender), consumed
    /// when `take_deliverable` actually delivers — a masked signal keeps
    /// the cell armed until the unblock that lets it through, so the edge
    /// spans the whole pending-to-delivery interval.
    wake: crate::trace::WakeCell,
}

#[derive(Debug, Default)]
struct SignalInner {
    mask: SigSet,
    pending: SigSet,
    dispositions: [(u8, Disposition); 5],
    /// Total signals ever posted (diagnostics).
    posted: u64,
}

impl SignalState {
    /// Fresh state: empty mask, nothing pending, default dispositions.
    pub fn new() -> SignalState {
        SignalState::default()
    }

    /// Post a signal (sender side of `kill`).
    pub fn post(&self, sig: Signal) {
        let mut inner = self.inner.lock();
        inner.pending.add(sig);
        inner.posted += 1;
        self.wake.stamp();
    }

    /// `sigprocmask(2)`. Returns the previous mask.
    pub fn set_mask(&self, how: MaskHow, set: SigSet) -> SigSet {
        let mut inner = self.inner.lock();
        let old = inner.mask;
        inner.mask = match how {
            MaskHow::Block => SigSet(old.0 | set.0),
            MaskHow::Unblock => SigSet(old.0 & !set.0),
            MaskHow::SetMask => set,
        };
        old
    }

    /// The current blocked-signal mask.
    pub fn mask(&self) -> SigSet {
        self.inner.lock().mask
    }

    /// Signals posted but not yet taken (`sigpending(2)`).
    pub fn pending(&self) -> SigSet {
        self.inner.lock().pending
    }

    /// Take one deliverable (pending and unblocked) signal, if any.
    pub fn take_deliverable(&self) -> Option<Signal> {
        let mut inner = self.inner.lock();
        let deliverable = SigSet(inner.pending.0 & !inner.mask.0);
        let sig = deliverable.iter().next()?;
        inner.pending.remove(sig);
        self.wake.consume(crate::trace::WakeSite::Signal);
        Some(sig)
    }

    /// `sigaction(2)`: set `sig`'s disposition, returning the previous one.
    pub fn set_disposition(&self, sig: Signal, disp: Disposition) -> KResult<Disposition> {
        let mut inner = self.inner.lock();
        for entry in inner.dispositions.iter_mut() {
            if entry.0 == sig as u8 || entry.0 == 0 {
                let was_set = entry.0 != 0;
                let old = if was_set {
                    entry.1
                } else {
                    Disposition::Default
                };
                *entry = (sig as u8, disp);
                return Ok(old);
            }
        }
        Err(Errno::EINVAL)
    }

    /// The current disposition for `sig` ([`Disposition::Default`] if never set).
    pub fn disposition(&self, sig: Signal) -> Disposition {
        let inner = self.inner.lock();
        inner
            .dispositions
            .iter()
            .find(|(s, _)| *s == sig as u8)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total signals ever posted to this process (diagnostics).
    pub fn total_posted(&self) -> u64 {
        self.inner.lock().posted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigset_ops() {
        let mut s = SigSet::EMPTY;
        assert!(s.is_empty());
        s.add(Signal::SigUsr1);
        s.add(Signal::SigTerm);
        assert!(s.contains(Signal::SigUsr1));
        assert!(!s.contains(Signal::SigInt));
        s.remove(Signal::SigUsr1);
        assert!(!s.contains(Signal::SigUsr1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Signal::SigTerm]);
    }

    #[test]
    fn post_then_take() {
        let st = SignalState::new();
        assert!(st.take_deliverable().is_none());
        st.post(Signal::SigUsr1);
        assert_eq!(st.take_deliverable(), Some(Signal::SigUsr1));
        assert!(st.take_deliverable().is_none(), "pending bit consumed");
    }

    #[test]
    fn masked_signals_stay_pending() {
        let st = SignalState::new();
        st.set_mask(MaskHow::Block, SigSet::with(&[Signal::SigUsr1]));
        st.post(Signal::SigUsr1);
        assert!(st.take_deliverable().is_none());
        assert!(st.pending().contains(Signal::SigUsr1));
        st.set_mask(MaskHow::Unblock, SigSet::with(&[Signal::SigUsr1]));
        assert_eq!(st.take_deliverable(), Some(Signal::SigUsr1));
    }

    #[test]
    fn setmask_replaces_whole_mask() {
        let st = SignalState::new();
        st.set_mask(
            MaskHow::Block,
            SigSet::with(&[Signal::SigUsr1, Signal::SigInt]),
        );
        let old = st.set_mask(MaskHow::SetMask, SigSet::with(&[Signal::SigTerm]));
        assert!(old.contains(Signal::SigUsr1) && old.contains(Signal::SigInt));
        assert_eq!(st.mask(), SigSet::with(&[Signal::SigTerm]));
    }

    #[test]
    fn dispositions_round_trip() {
        let st = SignalState::new();
        assert_eq!(st.disposition(Signal::SigUsr2), Disposition::Default);
        st.set_disposition(Signal::SigUsr2, Disposition::Handler(42))
            .unwrap();
        assert_eq!(st.disposition(Signal::SigUsr2), Disposition::Handler(42));
        let old = st
            .set_disposition(Signal::SigUsr2, Disposition::Ignore)
            .unwrap();
        assert_eq!(old, Disposition::Handler(42));
    }

    #[test]
    fn duplicate_posts_collapse() {
        // Like real POSIX signals, pending is a set, not a queue.
        let st = SignalState::new();
        st.post(Signal::SigUsr1);
        st.post(Signal::SigUsr1);
        assert_eq!(st.total_posted(), 2);
        assert_eq!(st.take_deliverable(), Some(Signal::SigUsr1));
        assert!(st.take_deliverable().is_none());
    }
}
