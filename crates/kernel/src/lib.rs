//! # ulp-kernel
//!
//! A user-space **simulated OS kernel** providing the substrate the paper's
//! user-level processes run against: a process table with PIDs and
//! parent/child relations, per-process file-descriptor tables, a tmpfs-like
//! in-memory filesystem, blocking pipes, futexes and semaphores, POSIX-style
//! signals, and a glibc-faithful POSIX AIO implementation (the paper's
//! baseline in Figs. 7–8).
//!
//! ## The one design rule
//!
//! Every system call executes against the process **bound to the calling OS
//! thread** ([`Kernel::bind_current`]) — the simulated equivalent of the
//! kernel context (KC) owning kernel state in the real kernel. This is what
//! makes the paper's *system-call consistency* problem (§I, §V-B) observable
//! in this reproduction instead of merely asserted: a user context running
//! on the wrong kernel context sees the wrong PID and the wrong FD table.
//!
//! ## Architecture cost models
//!
//! [`ArchProfile`] injects the two architecture-specific costs the paper's
//! evaluation identifies (TLS-register load, syscall entry) so that both
//! evaluation machines — Wallaby (x86_64) and Albireo (AArch64) — can be
//! modeled on one host. `ArchProfile::Native` injects nothing.

#![warn(missing_docs)]

pub mod aio;
pub mod cost;
pub mod errno;
pub mod fault;
pub mod fd;
pub mod fs;
pub mod futex;
pub mod kernel;
pub mod pipe;
pub mod poll;
pub mod process;
pub mod signal;
pub mod socket;
pub mod syscall;
pub mod trace;

pub use aio::{aio_suspend_any, Aiocb};
pub use cost::{cycles, cycles_per_ns, cycles_to_ns, spin_for, ArchProfile};
pub use errno::{Errno, KResult};
pub use fault::{FaultKind, FaultPlan, FAULT_KINDS};
pub use fd::{Fd, FdTable};
pub use fs::{
    install_proc_provider, DirEntry, FileStat, FileSystem, IoModel, MountTable, OpenFlags, ProcFs,
    ProcProvider, ProcSource, Tmpfs, Whence,
};
pub use futex::{futex_wait, futex_wait_timeout, futex_wake, Semaphore};
pub use kernel::{BindGuard, Kernel, KernelRef, TraceEntry};
pub use pipe::{pipe, pipe_with_capacity, PipeReader, PipeWriter};
pub use poll::{EpollObject, EpollOp, PollEvents, PollWaker, WatchSet};
pub use process::{Pid, ProcState, Process};
pub use signal::{Disposition, MaskHow, SigSet, Signal, SignalState};
pub use socket::{socketpair, socketpair_with_capacity, Listener, SocketEnd};
pub use trace::{
    install_syscall_observer, install_wake_hooks, SyscallObserver, SyscallPhase, Sysno, WakeCell,
    WakeSite,
};
