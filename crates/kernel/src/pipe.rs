//! Blocking pipes.
//!
//! A pipe is the canonical *blocking* system call pair: `read` on an empty
//! pipe and `write` on a full pipe both put the calling **OS thread** to
//! sleep in the (simulated) kernel. These are the calls that stall an entire
//! user-level-thread scheduler in a conventional ULT library — and the calls
//! that BLT's `couple()`/`decouple()` makes harmless (paper §I, §V-B).

use crate::errno::{Errno, KResult};
use crate::fault::{self, FaultKind};
use crate::kernel::errno_of;
use crate::poll::{PollEvents, WatchSet};
use crate::trace::{self, SyscallPhase, Sysno, WakeCell, WakeSite};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Default pipe capacity (Linux: 64 KiB).
pub const PIPE_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct PipeInner {
    buf: Mutex<VecDeque<u8>>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
    readers: AtomicUsize,
    writers: AtomicUsize,
    /// Readiness watchers (`poll`/`epoll` sleepers). Fired at exactly the
    /// sites that notify the blocking-path condvars above — one wait-queue
    /// discipline for both kinds of waiter (see [`crate::poll`]).
    watch: WatchSet,
    /// Wake-edge attribution for blocked readers: stamped (under `buf`'s
    /// lock, so the sleeper's re-check orders after it) by whoever makes
    /// the pipe readable, consumed by a reader whose sleep it ended.
    wake_read: WakeCell,
    /// Same for blocked writers: stamped by whoever frees space or drops
    /// the last read end.
    wake_write: WakeCell,
}

/// Read end of a pipe. Cloning shares the same endpoint (like `dup`).
#[derive(Debug)]
pub struct PipeReader(Arc<PipeInner>);

/// Write end of a pipe.
#[derive(Debug)]
pub struct PipeWriter(Arc<PipeInner>);

/// Create a connected pipe pair with the given capacity.
pub fn pipe_with_capacity(capacity: usize) -> (PipeReader, PipeWriter) {
    let inner = Arc::new(PipeInner {
        buf: Mutex::new(VecDeque::with_capacity(capacity.min(PIPE_CAPACITY))),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity: capacity.max(1),
        readers: AtomicUsize::new(1),
        writers: AtomicUsize::new(1),
        watch: WatchSet::new(),
        wake_read: WakeCell::new(),
        wake_write: WakeCell::new(),
    });
    (PipeReader(inner.clone()), PipeWriter(inner))
}

/// Create a connected pipe pair with the default capacity.
pub fn pipe() -> (PipeReader, PipeWriter) {
    pipe_with_capacity(PIPE_CAPACITY)
}

impl Clone for PipeReader {
    fn clone(&self) -> Self {
        self.0.readers.fetch_add(1, Ordering::Relaxed);
        PipeReader(self.0.clone())
    }
}

impl Clone for PipeWriter {
    fn clone(&self) -> Self {
        self.0.writers.fetch_add(1, Ordering::Relaxed);
        PipeWriter(self.0.clone())
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        if self.0.readers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Writers must observe EPIPE.
            self.0.wake_write.stamp();
            self.0.writable.notify_all();
            self.0.watch.notify();
        }
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        if self.0.writers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Readers must observe EOF.
            self.0.wake_read.stamp();
            self.0.readable.notify_all();
            self.0.watch.notify();
        }
    }
}

impl PipeReader {
    /// Blocking read: waits for at least one byte (or EOF). Returns 0 at
    /// EOF (all writers gone, buffer drained).
    ///
    /// When the calling thread actually sleeps, the sleep is bracketed by a
    /// `pipe_block_read` span through the syscall observer hook — nested
    /// inside the surrounding `read(2)` span, so the timeline distinguishes
    /// "read that returned at once" from "read that stalled its KC".
    pub fn read(&self, out: &mut [u8]) -> KResult<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        // Injected EINTR: fail before any bytes move, as a signal arriving
        // before the first transfer would.
        if fault::fire(FaultKind::Eintr) {
            return Err(Errno::EINTR);
        }
        // Injected short read: truncate the destination to one byte, the
        // worst legal outcome of a successful read.
        let out = if out.len() > 1 && fault::fire(FaultKind::ShortRead) {
            &mut out[..1]
        } else {
            out
        };
        let mut buf = self.0.buf.lock();
        let mut blocked = false;
        let res = loop {
            if !buf.is_empty() {
                let n = out.len().min(buf.len());
                for slot in out[..n].iter_mut() {
                    *slot = buf.pop_front().expect("len checked");
                }
                self.0.wake_write.stamp();
                self.0.writable.notify_all();
                self.0.watch.notify();
                break Ok(n);
            }
            if self.0.writers.load(Ordering::Acquire) == 0 {
                break Ok(0); // EOF
            }
            if !blocked {
                blocked = true;
                trace::emit(Sysno::PipeBlockRead, SyscallPhase::Enter);
            }
            self.0.readable.wait(&mut buf);
        };
        if blocked {
            // Attribute the wake that ended the sleep before closing the
            // span (the edge must land inside it). An EINTR never reaches
            // here — it fires before the first sleep.
            self.0.wake_read.consume(WakeSite::PipeRead);
            trace::emit(
                Sysno::PipeBlockRead,
                SyscallPhase::Exit {
                    errno: errno_of(&res),
                },
            );
        }
        res
    }

    /// Non-blocking read: `EAGAIN` instead of sleeping.
    pub fn try_read(&self, out: &mut [u8]) -> KResult<usize> {
        if fault::fire(FaultKind::Eagain) {
            return Err(Errno::EAGAIN);
        }
        let mut buf = self.0.buf.lock();
        if buf.is_empty() {
            return if self.0.writers.load(Ordering::Acquire) == 0 {
                Ok(0)
            } else {
                Err(Errno::EAGAIN)
            };
        }
        let n = out.len().min(buf.len());
        for slot in out[..n].iter_mut() {
            *slot = buf.pop_front().expect("len checked");
        }
        self.0.wake_write.stamp();
        self.0.writable.notify_all();
        self.0.watch.notify();
        Ok(n)
    }

    /// Bytes currently buffered.
    pub fn available(&self) -> usize {
        self.0.buf.lock().len()
    }

    /// Current readiness of the read end (level-triggered snapshot): `IN`
    /// when bytes are buffered or every writer is gone (EOF is readable —
    /// a read returns 0 at once), plus `HUP` in the latter case.
    pub fn poll_events(&self) -> PollEvents {
        let mut ev = PollEvents::NONE;
        let has_data = !self.0.buf.lock().is_empty();
        let writers_gone = self.0.writers.load(Ordering::Acquire) == 0;
        if has_data || writers_gone {
            ev = ev | PollEvents::IN;
        }
        if writers_gone {
            ev = ev | PollEvents::HUP;
        }
        ev
    }

    /// The pipe's readiness watch set (shared by both ends).
    pub fn watch(&self) -> &WatchSet {
        &self.0.watch
    }
}

impl PipeWriter {
    /// Blocking write of the whole buffer; sleeps whenever the pipe is full.
    /// Returns `EPIPE` if all readers are gone.
    ///
    /// Sleeps are bracketed by a `pipe_block_write` span, exactly as in
    /// [`PipeReader::read`].
    pub fn write(&self, data: &[u8]) -> KResult<usize> {
        // Injected EINTR: only legal before any bytes are written (once
        // data moved, a real kernel returns the partial count instead).
        if fault::fire(FaultKind::Eintr) {
            return Err(Errno::EINTR);
        }
        let mut written = 0;
        let mut buf = self.0.buf.lock();
        let mut blocked = false;
        let res = loop {
            if written >= data.len() {
                break Ok(written);
            }
            if self.0.readers.load(Ordering::Acquire) == 0 {
                break if written > 0 {
                    Ok(written)
                } else {
                    Err(Errno::EPIPE)
                };
            }
            let space = self.0.capacity.saturating_sub(buf.len());
            if space == 0 {
                if !blocked {
                    blocked = true;
                    trace::emit(Sysno::PipeBlockWrite, SyscallPhase::Enter);
                }
                self.0.writable.wait(&mut buf);
                continue;
            }
            let n = space.min(data.len() - written);
            buf.extend(&data[written..written + n]);
            written += n;
            self.0.wake_read.stamp();
            self.0.readable.notify_all();
            self.0.watch.notify();
        };
        if blocked {
            self.0.wake_write.consume(WakeSite::PipeWrite);
            trace::emit(
                Sysno::PipeBlockWrite,
                SyscallPhase::Exit {
                    errno: errno_of(&res),
                },
            );
        }
        res
    }

    /// Non-blocking write: writes what fits, `EAGAIN` if nothing fits.
    pub fn try_write(&self, data: &[u8]) -> KResult<usize> {
        if fault::fire(FaultKind::Eagain) {
            return Err(Errno::EAGAIN);
        }
        let mut buf = self.0.buf.lock();
        if self.0.readers.load(Ordering::Acquire) == 0 {
            return Err(Errno::EPIPE);
        }
        let space = self.0.capacity.saturating_sub(buf.len());
        if space == 0 {
            return Err(Errno::EAGAIN);
        }
        let n = space.min(data.len());
        buf.extend(&data[..n]);
        self.0.wake_read.stamp();
        self.0.readable.notify_all();
        self.0.watch.notify();
        Ok(n)
    }

    /// Current readiness of the write end (level-triggered snapshot): `OUT`
    /// while space remains and a reader exists; `ERR` once every reader is
    /// gone (the pipe-writer analogue of `POLLERR` on Linux).
    pub fn poll_events(&self) -> PollEvents {
        if self.0.readers.load(Ordering::Acquire) == 0 {
            return PollEvents::ERR;
        }
        if self.0.buf.lock().len() < self.0.capacity {
            PollEvents::OUT
        } else {
            PollEvents::NONE
        }
    }

    /// The pipe's readiness watch set (shared by both ends).
    pub fn watch(&self) -> &WatchSet {
        &self.0.watch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn write_then_read() {
        let (r, w) = pipe();
        assert_eq!(w.write(b"hello").unwrap(), 5);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 5);
        assert_eq!(&buf[..5], b"hello");
    }

    #[test]
    fn read_blocks_until_data() {
        let (r, w) = pipe();
        let t = thread::spawn(move || {
            let mut buf = [0u8; 4];
            let n = r.read(&mut buf).unwrap();
            (n, buf)
        });
        thread::sleep(Duration::from_millis(20));
        w.write(b"ok").unwrap();
        let (n, buf) = t.join().unwrap();
        assert_eq!(n, 2);
        assert_eq!(&buf[..2], b"ok");
    }

    #[test]
    fn write_blocks_when_full() {
        let (r, w) = pipe_with_capacity(4);
        assert_eq!(w.write(b"abcd").unwrap(), 4);
        let t = thread::spawn(move || w.write(b"ef").unwrap());
        thread::sleep(Duration::from_millis(20));
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert_eq!(t.join().unwrap(), 2);
        assert_eq!(r.read(&mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
    }

    #[test]
    fn eof_after_writer_drop() {
        let (r, w) = pipe();
        w.write(b"tail").unwrap();
        drop(w);
        let mut buf = [0u8; 8];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF expected");
    }

    #[test]
    fn epipe_after_reader_drop() {
        let (r, w) = pipe();
        drop(r);
        assert_eq!(w.write(b"x").unwrap_err(), Errno::EPIPE);
    }

    #[test]
    fn try_read_eagain_when_empty() {
        let (r, _w) = pipe();
        let mut buf = [0u8; 1];
        assert_eq!(r.try_read(&mut buf).unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn try_write_eagain_when_full() {
        let (_r, w) = pipe_with_capacity(2);
        assert_eq!(w.try_write(b"abc").unwrap(), 2);
        assert_eq!(w.try_write(b"d").unwrap_err(), Errno::EAGAIN);
    }

    #[test]
    fn cloned_ends_keep_pipe_alive() {
        let (r, w) = pipe();
        let w2 = w.clone();
        drop(w);
        w2.write(b"via clone").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 9);
        drop(w2);
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn bulk_transfer_is_lossless() {
        let (r, w) = pipe_with_capacity(256);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expect = data.clone();
        let t = thread::spawn(move || w.write(&data).unwrap());
        let mut got = Vec::new();
        let mut buf = [0u8; 333];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&buf[..n]);
            if got.len() == expect.len() {
                break;
            }
        }
        assert_eq!(t.join().unwrap(), expect.len());
        assert_eq!(got, expect);
    }
}
