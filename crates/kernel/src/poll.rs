//! Readiness notification: the wait-queue half of `poll`/`epoll`.
//!
//! The blocking pipe and socket paths already park the calling OS thread on
//! a condvar and get woken by whichever thread produced data, freed space or
//! closed an end. Readiness multiplexing reuses exactly those wakeup sites:
//! every waitable object owns a [`WatchSet`], and every site that today does
//! `condvar.notify_all()` *also* calls [`WatchSet::notify`]. A `poll` or
//! `epoll_wait` sleeper therefore wakes on the same edges that would unblock
//! a blocking read — there is one wait-queue discipline, not two.
//!
//! Semantics are **level-triggered** throughout: a waiter never consumes a
//! readiness edge, it re-scans the watched objects' *current* state after
//! every wakeup. That makes spurious notifications harmless (the scan just
//! comes back empty and the waiter sleeps again), which in turn keeps the
//! notify sites trivial: fire on every state change, never track what a
//! watcher has already seen.
//!
//! Ownership rule: the **object** (pipe, socket buffer, listener queue) owns
//! its `WatchSet` and is the only party that fires edges; watchers hold
//! `Weak` registrations and may vanish at any time. The inverse direction —
//! an epoll instance holding its interest list — also uses `Weak` (on the
//! open file description), so neither side keeps the other alive and a
//! dropped end still reaches EOF/HUP.

use parking_lot::{Condvar, Mutex};
use std::sync::{Arc, Weak};
use std::time::Instant;

/// Readiness event bits, mirroring the POSIX `POLL*` constants.
///
/// Follows the same custom-bitflags idiom as [`crate::fs::OpenFlags`] (no
/// external bitflags crate; every bit is a plain mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PollEvents(pub u16);

impl PollEvents {
    /// No events.
    pub const NONE: PollEvents = PollEvents(0);
    /// Data is readable without blocking (`POLLIN`). EOF counts as
    /// readable: a read would return 0 immediately.
    pub const IN: PollEvents = PollEvents(0x001);
    /// A write of at least the low-watermark size would proceed without
    /// blocking (`POLLOUT`).
    pub const OUT: PollEvents = PollEvents(0x004);
    /// Error condition (`POLLERR`): e.g. a pipe writer whose readers are
    /// all gone. Always reported, never part of the requested interest.
    pub const ERR: PollEvents = PollEvents(0x008);
    /// Hang-up (`POLLHUP`): the peer closed. Always reported, never part
    /// of the requested interest.
    pub const HUP: PollEvents = PollEvents(0x010);
    /// Invalid descriptor (`POLLNVAL`) — only ever set in `poll` revents.
    pub const NVAL: PollEvents = PollEvents(0x020);

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether all of `other`'s bits are present in `self`.
    #[inline]
    pub fn contains(self, other: PollEvents) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any of `other`'s bits are present in `self`.
    #[inline]
    pub fn intersects(self, other: PollEvents) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for PollEvents {
    type Output = PollEvents;
    fn bitor(self, rhs: PollEvents) -> PollEvents {
        PollEvents(self.0 | rhs.0)
    }
}

impl std::ops::BitAnd for PollEvents {
    type Output = PollEvents;
    fn bitand(self, rhs: PollEvents) -> PollEvents {
        PollEvents(self.0 & rhs.0)
    }
}

/// One sleeping multiplexer (an `epoll_wait` or `poll` call in progress).
///
/// The generation counter closes the classic lost-wakeup window: a waiter
/// reads the generation, scans object state, and only sleeps if the
/// generation is still unchanged — an edge that fired between scan and
/// sleep bumps the generation and the sleep returns immediately.
#[derive(Debug)]
pub struct PollWaker {
    gen: Mutex<u64>,
    cv: Condvar,
    /// Wake-edge attribution: stamped under the generation lock by the
    /// thread firing the edge, consumed by the `epoll_wait`/`poll` sleeper
    /// whose wait it ended (timeouts and EINTR leave it untouched).
    pub wake: crate::trace::WakeCell,
}

impl PollWaker {
    /// A fresh waker at generation 0.
    pub fn new() -> PollWaker {
        PollWaker {
            gen: Mutex::new(0),
            cv: Condvar::new(),
            wake: crate::trace::WakeCell::new(),
        }
    }

    /// Current generation; pass it to [`PollWaker::wait`] after scanning.
    pub fn generation(&self) -> u64 {
        *self.gen.lock()
    }

    /// Fire a readiness edge: bump the generation and wake every sleeper.
    pub fn wake(&self) {
        let mut g = self.gen.lock();
        self.wake.stamp();
        *g += 1;
        self.cv.notify_all();
    }

    /// Sleep until the generation moves past `seen` or `deadline` passes.
    /// Returns `true` if an edge fired, `false` on timeout. A `None`
    /// deadline sleeps indefinitely (only an edge can end the wait).
    pub fn wait(&self, seen: u64, deadline: Option<Instant>) -> bool {
        let mut g = self.gen.lock();
        while *g == seen {
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return false;
                    }
                    if self.cv.wait_for(&mut g, d - now).timed_out() && *g == seen {
                        return false;
                    }
                }
                None => self.cv.wait(&mut g),
            }
        }
        true
    }
}

impl Default for PollWaker {
    fn default() -> Self {
        PollWaker::new()
    }
}

/// The watchers of one waitable object. The object fires [`WatchSet::notify`]
/// at every state change that could affect readiness — the same sites that
/// already `notify_all()` the blocking-path condvars.
#[derive(Debug, Default)]
pub struct WatchSet {
    watchers: Mutex<Vec<Weak<PollWaker>>>,
}

impl WatchSet {
    /// An empty watch set.
    pub fn new() -> WatchSet {
        WatchSet::default()
    }

    /// Register a waker. Dead registrations are pruned on the next notify,
    /// so subscribers just drop their `Arc` to unsubscribe.
    pub fn subscribe(&self, waker: &Arc<PollWaker>) {
        self.watchers.lock().push(Arc::downgrade(waker));
    }

    /// Fire a readiness edge to every live watcher, pruning dead ones.
    pub fn notify(&self) {
        let mut ws = self.watchers.lock();
        ws.retain(|w| match w.upgrade() {
            Some(waker) => {
                waker.wake();
                true
            }
            None => false,
        });
    }

    /// Number of live registrations (test/diagnostic aid).
    pub fn watcher_count(&self) -> usize {
        self.watchers
            .lock()
            .iter()
            .filter(|w| w.upgrade().is_some())
            .count()
    }
}

/// `epoll_ctl` operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpollOp {
    /// Register a new descriptor (`EPOLL_CTL_ADD`).
    Add,
    /// Change the interest mask of a registered descriptor
    /// (`EPOLL_CTL_MOD`).
    Mod,
    /// Remove a registration (`EPOLL_CTL_DEL`).
    Del,
}

/// One registration in an epoll interest list: the watched description
/// (held weakly — epoll must not keep a pipe/socket end alive, or the
/// EOF/HUP edge it is waiting for could never fire) plus the interest mask.
#[derive(Debug)]
pub struct EpollEntry {
    /// The watched open file description, weak (auto-deregisters when the
    /// last descriptor to it closes, like Linux epoll).
    pub target: Weak<crate::fd::Description>,
    /// Requested event mask. `ERR`/`HUP` are implicit and always reported.
    pub interest: PollEvents,
}

/// The kernel object behind an epoll descriptor.
///
/// The interest list is keyed by the *fd number used at registration time*
/// (what `epoll_wait` reports back), but each entry identifies its watched
/// object by open file description — so the registration survives `dup2`
/// shuffles of the original slot, and dies only when the description does.
#[derive(Debug, Default)]
pub struct EpollObject {
    /// fd-at-registration → entry.
    pub interest: Mutex<std::collections::BTreeMap<i32, EpollEntry>>,
    /// Woken by every watched object's `WatchSet` (one subscription per
    /// `Add`), and re-armed by re-scan — level-triggered.
    pub waker: Arc<PollWaker>,
}

impl EpollObject {
    /// A fresh epoll instance with an empty interest list.
    pub fn new() -> EpollObject {
        EpollObject::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn events_compose_like_poll_bits() {
        let ev = PollEvents::IN | PollEvents::HUP;
        assert!(ev.contains(PollEvents::IN));
        assert!(ev.intersects(PollEvents::HUP));
        assert!(!ev.contains(PollEvents::OUT));
        assert!((ev & PollEvents::OUT).is_empty());
        assert_eq!(PollEvents::IN.0, 0x001, "POLLIN value");
        assert_eq!(PollEvents::OUT.0, 0x004, "POLLOUT value");
        assert_eq!(PollEvents::HUP.0, 0x010, "POLLHUP value");
    }

    #[test]
    fn waker_wait_times_out_without_edge() {
        let w = PollWaker::new();
        let gen = w.generation();
        let deadline = Instant::now() + Duration::from_millis(20);
        assert!(!w.wait(gen, Some(deadline)));
    }

    #[test]
    fn edge_between_scan_and_sleep_is_not_lost() {
        let w = PollWaker::new();
        let gen = w.generation();
        w.wake(); // Edge fires after the scan, before the sleep.
        assert!(w.wait(gen, None), "bumped generation must not sleep");
    }

    #[test]
    fn notify_wakes_cross_thread_sleeper() {
        let w = Arc::new(PollWaker::new());
        let set = WatchSet::new();
        set.subscribe(&w);
        let sleeper = {
            let w = w.clone();
            thread::spawn(move || w.wait(w.generation(), None))
        };
        thread::sleep(Duration::from_millis(10));
        set.notify();
        assert!(sleeper.join().unwrap());
    }

    #[test]
    fn dead_watchers_are_pruned() {
        let set = WatchSet::new();
        let w = Arc::new(PollWaker::new());
        set.subscribe(&w);
        assert_eq!(set.watcher_count(), 1);
        drop(w);
        set.notify();
        assert_eq!(set.watcher_count(), 0);
    }
}
