//! POSIX-style error codes returned by the simulated kernel.

use std::fmt;

/// Result type of every simulated system call.
pub type KResult<T> = Result<T, Errno>;

/// The subset of POSIX `errno` values the simulated kernel can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// No child processes.
    ECHILD = 10,
    /// Try again (non-blocking operation would block).
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// File exists.
    EEXIST = 17,
    /// Cross-device link (the operation would span two mounts).
    EXDEV = 18,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files in system.
    ENFILE = 23,
    /// Too many open files.
    EMFILE = 24,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Read-only file system.
    EROFS = 30,
    /// Broken pipe.
    EPIPE = 32,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Operation timed out.
    ETIMEDOUT = 110,
    /// Operation now in progress (AIO request still running).
    EINPROGRESS = 115,
    /// Operation canceled.
    ECANCELED = 125,
}

impl Errno {
    /// Stable text name (matches `errno.h`).
    pub fn name(&self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::ECHILD => "ECHILD",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EROFS => "EROFS",
            Errno::EPIPE => "EPIPE",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::ETIMEDOUT => "ETIMEDOUT",
            Errno::EINPROGRESS => "EINPROGRESS",
            Errno::ECANCELED => "ECANCELED",
        }
    }

    /// Numeric value as it would appear in C `errno`.
    #[inline]
    pub fn as_raw(&self) -> i32 {
        *self as i32
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_raw())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_values_match_linux() {
        assert_eq!(Errno::ENOENT.as_raw(), 2);
        assert_eq!(Errno::EBADF.as_raw(), 9);
        assert_eq!(Errno::EAGAIN.as_raw(), 11);
        assert_eq!(Errno::EINPROGRESS.as_raw(), 115);
    }

    #[test]
    fn display_includes_name_and_value() {
        assert_eq!(Errno::EINVAL.to_string(), "EINVAL (22)");
    }
}
