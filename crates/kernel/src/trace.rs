//! Syscall-span observation hooks.
//!
//! The simulated kernel sits *below* `ulp-core` in the crate graph, so it
//! cannot write into the runtime's per-KC trace shards directly. Instead it
//! exposes a process-global **observer hook**: the runtime installs a plain
//! `fn(Sysno, SyscallPhase)` once at construction, and every simulated
//! system call emits an `Enter`/`Exit` pair through it. The observer routes
//! the pair onto the calling OS thread's trace shard (same rings, same
//! process-wide clock as the couple/decouple protocol events), which is what
//! lets the merged Perfetto timeline interleave syscall spans with BLT state
//! tracks and makes system-call-consistency violations visually obvious.
//!
//! With no observer installed (the kernel crate used standalone, or tracing
//! never wired up) every emit is a single `OnceLock` load — the kernel keeps
//! working with zero observability cost.

use std::sync::OnceLock;

/// Identity of a simulated system call, used to label trace spans and to
/// index the per-syscall latency histograms.
///
/// Discriminants are dense (`0..COUNT`) so the value round-trips through the
/// packed trace-slot encoding via [`Sysno::from_u16`] and can index a
/// `[_; Sysno::COUNT]` table directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Sysno {
    /// `getpid(2)` — the paper's Table V consistency microbenchmark.
    Getpid = 0,
    /// `getppid(2)`.
    Getppid,
    /// `getcwd(2)`.
    Getcwd,
    /// `chdir(2)`.
    Chdir,
    /// `open(2)`.
    Open,
    /// `close(2)`.
    Close,
    /// `write(2)` (tmpfs or pipe; the pipe case may block).
    Write,
    /// `read(2)` (tmpfs or pipe; the pipe case may block).
    Read,
    /// `pwrite(2)`.
    Pwrite,
    /// `pread(2)`.
    Pread,
    /// `lseek(2)`.
    Lseek,
    /// `ftruncate(2)`.
    Ftruncate,
    /// `dup(2)`.
    Dup,
    /// `dup2(2)`.
    Dup2,
    /// `pipe(2)`.
    Pipe,
    /// `unlink(2)`.
    Unlink,
    /// `mkdir(2)`.
    Mkdir,
    /// `rmdir(2)`.
    Rmdir,
    /// `link(2)`.
    Link,
    /// `rename(2)`.
    Rename,
    /// `stat(2)`.
    Stat,
    /// `readdir(3)`.
    Readdir,
    /// `kill(2)`.
    Kill,
    /// `sigprocmask(2)`.
    Sigprocmask,
    /// `sigpending(2)`.
    Sigpending,
    /// Signal-delivery dequeue (the simulated return-to-userspace point).
    TakeSignal,
    /// `nanosleep(2)` — blocks the calling OS thread.
    Nanosleep,
    /// Blocking `waitpid(2)`.
    Waitpid,
    /// `futex(FUTEX_WAIT)` — the BLOCKING idle primitive (§VI-C).
    FutexWait,
    /// `aio_write(3)` submission.
    AioWrite,
    /// `aio_read(3)` submission.
    AioRead,
    /// `aio_suspend(3)` — blocks until an AIO request completes.
    AioSuspend,
    /// The in-kernel sleep of a `read(2)` on an empty pipe.
    PipeBlockRead,
    /// The in-kernel sleep of a `write(2)` on a full pipe.
    PipeBlockWrite,
    /// `socketpair(2)` — create a connected loopback stream pair.
    Socketpair,
    /// `listen(2)`-ish: install a listener in the caller's FD table.
    Listen,
    /// `connect(2)` against an in-kernel listener.
    Connect,
    /// `accept(2)` — may block until a client connects.
    Accept,
    /// `poll(2)` — readiness wait over an explicit fd set.
    Poll,
    /// `epoll_create(2)`.
    EpollCreate,
    /// `epoll_ctl(2)` — add/modify/delete one interest-list entry.
    EpollCtl,
    /// `epoll_wait(2)` — may block until a watched fd becomes ready.
    EpollWait,
    /// The in-kernel sleep of an `epoll_wait`/`poll` with nothing ready.
    EpollBlockWait,
    /// The in-kernel sleep of a `read(2)` on an empty socket direction.
    SockBlockRead,
    /// The in-kernel sleep of a `write(2)` on a full socket direction.
    SockBlockWrite,
    /// The in-kernel sleep of an `accept(2)` on an empty accept queue.
    AcceptBlock,
}

impl Sysno {
    /// Number of distinct syscalls — the length of per-syscall tables.
    pub const COUNT: usize = 46;

    /// All syscalls, in discriminant order (`ALL[i] as u16 == i`).
    pub const ALL: [Sysno; Sysno::COUNT] = [
        Sysno::Getpid,
        Sysno::Getppid,
        Sysno::Getcwd,
        Sysno::Chdir,
        Sysno::Open,
        Sysno::Close,
        Sysno::Write,
        Sysno::Read,
        Sysno::Pwrite,
        Sysno::Pread,
        Sysno::Lseek,
        Sysno::Ftruncate,
        Sysno::Dup,
        Sysno::Dup2,
        Sysno::Pipe,
        Sysno::Unlink,
        Sysno::Mkdir,
        Sysno::Rmdir,
        Sysno::Link,
        Sysno::Rename,
        Sysno::Stat,
        Sysno::Readdir,
        Sysno::Kill,
        Sysno::Sigprocmask,
        Sysno::Sigpending,
        Sysno::TakeSignal,
        Sysno::Nanosleep,
        Sysno::Waitpid,
        Sysno::FutexWait,
        Sysno::AioWrite,
        Sysno::AioRead,
        Sysno::AioSuspend,
        Sysno::PipeBlockRead,
        Sysno::PipeBlockWrite,
        Sysno::Socketpair,
        Sysno::Listen,
        Sysno::Connect,
        Sysno::Accept,
        Sysno::Poll,
        Sysno::EpollCreate,
        Sysno::EpollCtl,
        Sysno::EpollWait,
        Sysno::EpollBlockWait,
        Sysno::SockBlockRead,
        Sysno::SockBlockWrite,
        Sysno::AcceptBlock,
    ];

    /// Stable lower-case name, used as the Perfetto span label and the
    /// `call="…"` Prometheus label.
    pub fn name(self) -> &'static str {
        match self {
            Sysno::Getpid => "getpid",
            Sysno::Getppid => "getppid",
            Sysno::Getcwd => "getcwd",
            Sysno::Chdir => "chdir",
            Sysno::Open => "open",
            Sysno::Close => "close",
            Sysno::Write => "write",
            Sysno::Read => "read",
            Sysno::Pwrite => "pwrite",
            Sysno::Pread => "pread",
            Sysno::Lseek => "lseek",
            Sysno::Ftruncate => "ftruncate",
            Sysno::Dup => "dup",
            Sysno::Dup2 => "dup2",
            Sysno::Pipe => "pipe",
            Sysno::Unlink => "unlink",
            Sysno::Mkdir => "mkdir",
            Sysno::Rmdir => "rmdir",
            Sysno::Link => "link",
            Sysno::Rename => "rename",
            Sysno::Stat => "stat",
            Sysno::Readdir => "readdir",
            Sysno::Kill => "kill",
            Sysno::Sigprocmask => "sigprocmask",
            Sysno::Sigpending => "sigpending",
            Sysno::TakeSignal => "take_signal",
            Sysno::Nanosleep => "nanosleep",
            Sysno::Waitpid => "waitpid",
            Sysno::FutexWait => "futex_wait",
            Sysno::AioWrite => "aio_write",
            Sysno::AioRead => "aio_read",
            Sysno::AioSuspend => "aio_suspend",
            Sysno::PipeBlockRead => "pipe_block_read",
            Sysno::PipeBlockWrite => "pipe_block_write",
            Sysno::Socketpair => "socketpair",
            Sysno::Listen => "listen",
            Sysno::Connect => "connect",
            Sysno::Accept => "accept",
            Sysno::Poll => "poll",
            Sysno::EpollCreate => "epoll_create",
            Sysno::EpollCtl => "epoll_ctl",
            Sysno::EpollWait => "epoll_wait",
            Sysno::EpollBlockWait => "epoll_block_wait",
            Sysno::SockBlockRead => "sock_block_read",
            Sysno::SockBlockWrite => "sock_block_write",
            Sysno::AcceptBlock => "accept_block",
        }
    }

    /// Inverse of `self as u16`; `None` for out-of-range values (e.g. a
    /// corrupt trace slot).
    pub fn from_u16(v: u16) -> Option<Sysno> {
        Sysno::ALL.get(v as usize).copied()
    }
}

/// Which edge of a syscall span an observation marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallPhase {
    /// The call is about to execute (after the calling thread's process
    /// binding was resolved).
    Enter,
    /// The call returned.
    Exit {
        /// Raw errno of the result: `0` on success.
        errno: i32,
    },
}

/// The hook type: called on the *issuing* OS thread, synchronously, on both
/// edges of every simulated system call. Must be cheap and must not call
/// back into the kernel.
pub type SyscallObserver = fn(Sysno, SyscallPhase);

static OBSERVER: OnceLock<SyscallObserver> = OnceLock::new();

/// Install the process-global syscall observer. The first installation wins;
/// later calls are no-ops (the runtime may be constructed several times in
/// one process — e.g. tests — and all instances install the same router).
pub fn install_syscall_observer(f: SyscallObserver) {
    let _ = OBSERVER.set(f);
}

/// Emit one syscall observation. A single `OnceLock` load when no observer
/// was ever installed.
#[inline]
pub fn emit(no: Sysno, phase: SyscallPhase) {
    if let Some(f) = OBSERVER.get() {
        f(no, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_matches_discriminants() {
        for (i, no) in Sysno::ALL.iter().enumerate() {
            assert_eq!(*no as u16 as usize, i);
            assert_eq!(Sysno::from_u16(i as u16), Some(*no));
        }
        assert_eq!(Sysno::from_u16(Sysno::COUNT as u16), None);
        assert_eq!(Sysno::ALL.len(), Sysno::COUNT);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Sysno::ALL.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Sysno::COUNT);
        assert_eq!(Sysno::Getpid.name(), "getpid");
        assert_eq!(Sysno::PipeBlockWrite.name(), "pipe_block_write");
    }

    #[test]
    fn emit_without_observer_is_a_noop() {
        // Must not panic or allocate; just exercises the cold path.
        emit(Sysno::Getpid, SyscallPhase::Enter);
        emit(Sysno::Getpid, SyscallPhase::Exit { errno: 0 });
    }
}
