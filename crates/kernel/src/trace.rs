//! Syscall-span observation hooks.
//!
//! The simulated kernel sits *below* `ulp-core` in the crate graph, so it
//! cannot write into the runtime's per-KC trace shards directly. Instead it
//! exposes a process-global **observer hook**: the runtime installs a plain
//! `fn(Sysno, SyscallPhase)` once at construction, and every simulated
//! system call emits an `Enter`/`Exit` pair through it. The observer routes
//! the pair onto the calling OS thread's trace shard (same rings, same
//! process-wide clock as the couple/decouple protocol events), which is what
//! lets the merged Perfetto timeline interleave syscall spans with BLT state
//! tracks and makes system-call-consistency violations visually obvious.
//!
//! With no observer installed (the kernel crate used standalone, or tracing
//! never wired up) every emit is a single `OnceLock` load — the kernel keeps
//! working with zero observability cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Identity of a simulated system call, used to label trace spans and to
/// index the per-syscall latency histograms.
///
/// Discriminants are dense (`0..COUNT`) so the value round-trips through the
/// packed trace-slot encoding via [`Sysno::from_u16`] and can index a
/// `[_; Sysno::COUNT]` table directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Sysno {
    /// `getpid(2)` — the paper's Table V consistency microbenchmark.
    Getpid = 0,
    /// `getppid(2)`.
    Getppid,
    /// `getcwd(2)`.
    Getcwd,
    /// `chdir(2)`.
    Chdir,
    /// `open(2)`.
    Open,
    /// `close(2)`.
    Close,
    /// `write(2)` (tmpfs or pipe; the pipe case may block).
    Write,
    /// `read(2)` (tmpfs or pipe; the pipe case may block).
    Read,
    /// `pwrite(2)`.
    Pwrite,
    /// `pread(2)`.
    Pread,
    /// `lseek(2)`.
    Lseek,
    /// `ftruncate(2)`.
    Ftruncate,
    /// `dup(2)`.
    Dup,
    /// `dup2(2)`.
    Dup2,
    /// `pipe(2)`.
    Pipe,
    /// `unlink(2)`.
    Unlink,
    /// `mkdir(2)`.
    Mkdir,
    /// `rmdir(2)`.
    Rmdir,
    /// `link(2)`.
    Link,
    /// `rename(2)`.
    Rename,
    /// `stat(2)`.
    Stat,
    /// `readdir(3)`.
    Readdir,
    /// `kill(2)`.
    Kill,
    /// `sigprocmask(2)`.
    Sigprocmask,
    /// `sigpending(2)`.
    Sigpending,
    /// Signal-delivery dequeue (the simulated return-to-userspace point).
    TakeSignal,
    /// `nanosleep(2)` — blocks the calling OS thread.
    Nanosleep,
    /// Blocking `waitpid(2)`.
    Waitpid,
    /// `futex(FUTEX_WAIT)` — the BLOCKING idle primitive (§VI-C).
    FutexWait,
    /// `aio_write(3)` submission.
    AioWrite,
    /// `aio_read(3)` submission.
    AioRead,
    /// `aio_suspend(3)` — blocks until an AIO request completes.
    AioSuspend,
    /// The in-kernel sleep of a `read(2)` on an empty pipe.
    PipeBlockRead,
    /// The in-kernel sleep of a `write(2)` on a full pipe.
    PipeBlockWrite,
    /// `socketpair(2)` — create a connected loopback stream pair.
    Socketpair,
    /// `listen(2)`-ish: install a listener in the caller's FD table.
    Listen,
    /// `connect(2)` against an in-kernel listener.
    Connect,
    /// `accept(2)` — may block until a client connects.
    Accept,
    /// `poll(2)` — readiness wait over an explicit fd set.
    Poll,
    /// `epoll_create(2)`.
    EpollCreate,
    /// `epoll_ctl(2)` — add/modify/delete one interest-list entry.
    EpollCtl,
    /// `epoll_wait(2)` — may block until a watched fd becomes ready.
    EpollWait,
    /// The in-kernel sleep of an `epoll_wait`/`poll` with nothing ready.
    EpollBlockWait,
    /// The in-kernel sleep of a `read(2)` on an empty socket direction.
    SockBlockRead,
    /// The in-kernel sleep of a `write(2)` on a full socket direction.
    SockBlockWrite,
    /// The in-kernel sleep of an `accept(2)` on an empty accept queue.
    AcceptBlock,
}

impl Sysno {
    /// Number of distinct syscalls — the length of per-syscall tables.
    pub const COUNT: usize = 46;

    /// All syscalls, in discriminant order (`ALL[i] as u16 == i`).
    pub const ALL: [Sysno; Sysno::COUNT] = [
        Sysno::Getpid,
        Sysno::Getppid,
        Sysno::Getcwd,
        Sysno::Chdir,
        Sysno::Open,
        Sysno::Close,
        Sysno::Write,
        Sysno::Read,
        Sysno::Pwrite,
        Sysno::Pread,
        Sysno::Lseek,
        Sysno::Ftruncate,
        Sysno::Dup,
        Sysno::Dup2,
        Sysno::Pipe,
        Sysno::Unlink,
        Sysno::Mkdir,
        Sysno::Rmdir,
        Sysno::Link,
        Sysno::Rename,
        Sysno::Stat,
        Sysno::Readdir,
        Sysno::Kill,
        Sysno::Sigprocmask,
        Sysno::Sigpending,
        Sysno::TakeSignal,
        Sysno::Nanosleep,
        Sysno::Waitpid,
        Sysno::FutexWait,
        Sysno::AioWrite,
        Sysno::AioRead,
        Sysno::AioSuspend,
        Sysno::PipeBlockRead,
        Sysno::PipeBlockWrite,
        Sysno::Socketpair,
        Sysno::Listen,
        Sysno::Connect,
        Sysno::Accept,
        Sysno::Poll,
        Sysno::EpollCreate,
        Sysno::EpollCtl,
        Sysno::EpollWait,
        Sysno::EpollBlockWait,
        Sysno::SockBlockRead,
        Sysno::SockBlockWrite,
        Sysno::AcceptBlock,
    ];

    /// Stable lower-case name, used as the Perfetto span label and the
    /// `call="…"` Prometheus label.
    pub fn name(self) -> &'static str {
        match self {
            Sysno::Getpid => "getpid",
            Sysno::Getppid => "getppid",
            Sysno::Getcwd => "getcwd",
            Sysno::Chdir => "chdir",
            Sysno::Open => "open",
            Sysno::Close => "close",
            Sysno::Write => "write",
            Sysno::Read => "read",
            Sysno::Pwrite => "pwrite",
            Sysno::Pread => "pread",
            Sysno::Lseek => "lseek",
            Sysno::Ftruncate => "ftruncate",
            Sysno::Dup => "dup",
            Sysno::Dup2 => "dup2",
            Sysno::Pipe => "pipe",
            Sysno::Unlink => "unlink",
            Sysno::Mkdir => "mkdir",
            Sysno::Rmdir => "rmdir",
            Sysno::Link => "link",
            Sysno::Rename => "rename",
            Sysno::Stat => "stat",
            Sysno::Readdir => "readdir",
            Sysno::Kill => "kill",
            Sysno::Sigprocmask => "sigprocmask",
            Sysno::Sigpending => "sigpending",
            Sysno::TakeSignal => "take_signal",
            Sysno::Nanosleep => "nanosleep",
            Sysno::Waitpid => "waitpid",
            Sysno::FutexWait => "futex_wait",
            Sysno::AioWrite => "aio_write",
            Sysno::AioRead => "aio_read",
            Sysno::AioSuspend => "aio_suspend",
            Sysno::PipeBlockRead => "pipe_block_read",
            Sysno::PipeBlockWrite => "pipe_block_write",
            Sysno::Socketpair => "socketpair",
            Sysno::Listen => "listen",
            Sysno::Connect => "connect",
            Sysno::Accept => "accept",
            Sysno::Poll => "poll",
            Sysno::EpollCreate => "epoll_create",
            Sysno::EpollCtl => "epoll_ctl",
            Sysno::EpollWait => "epoll_wait",
            Sysno::EpollBlockWait => "epoll_block_wait",
            Sysno::SockBlockRead => "sock_block_read",
            Sysno::SockBlockWrite => "sock_block_write",
            Sysno::AcceptBlock => "accept_block",
        }
    }

    /// Inverse of `self as u16`; `None` for out-of-range values (e.g. a
    /// corrupt trace slot).
    pub fn from_u16(v: u16) -> Option<Sysno> {
        Sysno::ALL.get(v as usize).copied()
    }
}

/// Which edge of a syscall span an observation marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallPhase {
    /// The call is about to execute (after the calling thread's process
    /// binding was resolved).
    Enter,
    /// The call returned.
    Exit {
        /// Raw errno of the result: `0` on success.
        errno: i32,
    },
}

/// The hook type: called on the *issuing* OS thread, synchronously, on both
/// edges of every simulated system call. Must be cheap and must not call
/// back into the kernel.
pub type SyscallObserver = fn(Sysno, SyscallPhase);

static OBSERVER: OnceLock<SyscallObserver> = OnceLock::new();

/// Install the process-global syscall observer. The first installation wins;
/// later calls are no-ops (the runtime may be constructed several times in
/// one process — e.g. tests — and all instances install the same router).
pub fn install_syscall_observer(f: SyscallObserver) {
    let _ = OBSERVER.set(f);
}

/// Emit one syscall observation. A single `OnceLock` load when no observer
/// was ever installed.
#[inline]
pub fn emit(no: Sysno, phase: SyscallPhase) {
    if let Some(f) = OBSERVER.get() {
        f(no, phase);
    }
}

/// Origin of a wake edge — which kind of event made a blocked or queued BLT
/// runnable again.
///
/// Discriminants are dense (`0..COUNT`) so the value round-trips through the
/// packed trace-slot encoding via [`WakeSite::from_u16`] and can index a
/// `[_; WakeSite::COUNT]` histogram table directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum WakeSite {
    /// Run-queue enqueue after a voluntary decouple/yield (the ULP made
    /// itself runnable again; waker == wakee).
    Enqueue = 0,
    /// First enqueue of a freshly spawned ULP (waker = the spawning ULP).
    Spawn,
    /// A parked couple request was granted by the TC loop (waker == wakee:
    /// the requester's own earlier request matured).
    CoupleResume,
    /// `decouple()` handed its KC straight to a parked couple requester
    /// (waker = the decoupling ULP).
    CoupleHandoff,
    /// A couple request landing on an idle KC's pending queue woke the KC's
    /// trampoline loop (wakee = the KC's primary identity).
    KcNotify,
    /// `futex_wake` released a sleeper parked in `futex_wait`.
    FutexWake,
    /// A pipe write (or writer hang-up) ended a blocked pipe `read(2)`.
    PipeRead,
    /// A pipe read (or reader hang-up) ended a blocked pipe `write(2)`.
    PipeWrite,
    /// A socket send (or peer hang-up) ended a blocked socket `read(2)`.
    SockRead,
    /// A socket receive (or peer hang-up) ended a blocked socket `write(2)`.
    SockWrite,
    /// A `connect(2)` rendezvous ended a blocked `accept(2)`.
    Accept,
    /// A `PollWaker` fire ended a blocked `epoll_wait(2)`.
    EpollWait,
    /// A `PollWaker` fire ended a blocked `poll(2)`.
    Poll,
    /// A posted signal was dequeued at the simulated return-to-userspace
    /// point.
    Signal,
}

impl WakeSite {
    /// Number of distinct wake sites — the length of per-site tables.
    pub const COUNT: usize = 14;

    /// All sites, in discriminant order (`ALL[i] as u16 == i`).
    pub const ALL: [WakeSite; WakeSite::COUNT] = [
        WakeSite::Enqueue,
        WakeSite::Spawn,
        WakeSite::CoupleResume,
        WakeSite::CoupleHandoff,
        WakeSite::KcNotify,
        WakeSite::FutexWake,
        WakeSite::PipeRead,
        WakeSite::PipeWrite,
        WakeSite::SockRead,
        WakeSite::SockWrite,
        WakeSite::Accept,
        WakeSite::EpollWait,
        WakeSite::Poll,
        WakeSite::Signal,
    ];

    /// Stable lower-case name, used as the Perfetto flow label and the
    /// `site="…"` Prometheus label.
    pub fn name(self) -> &'static str {
        match self {
            WakeSite::Enqueue => "enqueue",
            WakeSite::Spawn => "spawn",
            WakeSite::CoupleResume => "couple_resume",
            WakeSite::CoupleHandoff => "couple_handoff",
            WakeSite::KcNotify => "kc_notify",
            WakeSite::FutexWake => "futex_wake",
            WakeSite::PipeRead => "pipe_read",
            WakeSite::PipeWrite => "pipe_write",
            WakeSite::SockRead => "sock_read",
            WakeSite::SockWrite => "sock_write",
            WakeSite::Accept => "accept",
            WakeSite::EpollWait => "epoll_wait",
            WakeSite::Poll => "poll",
            WakeSite::Signal => "signal",
        }
    }

    /// Inverse of `self as u16`; `None` for out-of-range values.
    pub fn from_u16(v: u16) -> Option<WakeSite> {
        WakeSite::ALL.get(v as usize).copied()
    }
}

/// Hook resolving the *current* thread to a `(waker_blt_id, now_ns)` pair at
/// the moment a wake stamp is armed. Returns `(0, 0)` when tracing is off
/// (the stamp is then suppressed entirely); a waker id of `0` with a nonzero
/// timestamp means "a thread outside the runtime" (BLT ids start at 1).
pub type WakeStamp = fn() -> (u64, u64);

/// Hook invoked on the *woken* thread when a consumed wake stamp proves a
/// real block-ending edge: `(waker_blt_id, armed_ns, site)`. The hook
/// resolves the wakee from its own thread state and records the edge.
pub type WakeEmit = fn(u64, u64, WakeSite);

static WAKE_STAMP: OnceLock<WakeStamp> = OnceLock::new();
static WAKE_EMIT: OnceLock<WakeEmit> = OnceLock::new();

/// Install the process-global wake hooks. First installation wins, same as
/// [`install_syscall_observer`].
pub fn install_wake_hooks(stamp: WakeStamp, emit: WakeEmit) {
    let _ = WAKE_STAMP.set(stamp);
    let _ = WAKE_EMIT.set(emit);
}

/// Resolve the current thread's wake-stamp identity. `(0, 0)` when no hook
/// is installed or tracing is off.
#[inline]
pub fn wake_stamp_now() -> (u64, u64) {
    match WAKE_STAMP.get() {
        Some(f) => f(),
        None => (0, 0),
    }
}

/// Emit one wake edge through the installed hook (no-op when absent).
#[inline]
pub fn wake_emit(waker: u64, armed_ns: u64, site: WakeSite) {
    if let Some(f) = WAKE_EMIT.get() {
        f(waker, armed_ns, site);
    }
}

/// A one-slot wake stamp shared between a waker and the sleeper it releases.
///
/// The waker calls [`WakeCell::stamp`] immediately *before* its notify; the
/// sleeper calls [`WakeCell::consume`] after it actually slept and the wait
/// predicate finally held. `consume` clears the cell (swap to 0), so a stamp
/// is attributed at most once — a later unblock with no fresh stamp (EOF
/// drain, spurious wake) emits nothing. Validity is carried by `armed_ns !=
/// 0`; `waker == 0` means "stamped by a thread outside the runtime".
///
/// Publication rides on the sleeper's own wait protocol: every call site
/// stamps under the same lock (or before the same Release store) that the
/// sleeper re-checks its predicate under, so a sleeper that observes the
/// state change also observes the stamp.
#[derive(Debug, Default)]
pub struct WakeCell {
    waker: AtomicU64,
    armed_ns: AtomicU64,
}

impl WakeCell {
    /// A fresh, unarmed cell.
    pub const fn new() -> WakeCell {
        WakeCell {
            waker: AtomicU64::new(0),
            armed_ns: AtomicU64::new(0),
        }
    }

    /// Arm the cell with the current thread's identity and clock. No-op when
    /// tracing is off (the hook returns `now == 0`). Later stamps overwrite
    /// earlier unconsumed ones — the *last* wake before the sleeper runs is
    /// the one that actually ended its wait.
    #[inline]
    pub fn stamp(&self) {
        let (waker, now) = wake_stamp_now();
        if now != 0 {
            self.stamp_as(waker, now);
        }
    }

    /// Arm the cell with an explicit waker identity and timestamp (for call
    /// sites that already resolved both).
    #[inline]
    pub fn stamp_as(&self, waker: u64, now: u64) {
        self.waker.store(waker, Ordering::Relaxed);
        self.armed_ns.store(now, Ordering::Release);
    }

    /// Take the stamp without emitting: `Some((waker, armed_ns))` if one
    /// was armed. Clears the cell, so a stamp is attributed (or discarded)
    /// at most once. For consumers that resolve the wakee themselves.
    #[inline]
    pub fn take(&self) -> Option<(u64, u64)> {
        let armed = self.armed_ns.swap(0, Ordering::Acquire);
        if armed != 0 {
            Some((self.waker.load(Ordering::Relaxed), armed))
        } else {
            None
        }
    }

    /// Consume the stamp, emitting a wake edge for `site` if one was armed.
    /// Clears the cell so the stamp cannot be attributed twice.
    #[inline]
    pub fn consume(&self, site: WakeSite) {
        if let Some((waker, armed)) = self.take() {
            wake_emit(waker, armed, site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table_matches_discriminants() {
        for (i, no) in Sysno::ALL.iter().enumerate() {
            assert_eq!(*no as u16 as usize, i);
            assert_eq!(Sysno::from_u16(i as u16), Some(*no));
        }
        assert_eq!(Sysno::from_u16(Sysno::COUNT as u16), None);
        assert_eq!(Sysno::ALL.len(), Sysno::COUNT);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Sysno::ALL.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Sysno::COUNT);
        assert_eq!(Sysno::Getpid.name(), "getpid");
        assert_eq!(Sysno::PipeBlockWrite.name(), "pipe_block_write");
    }

    #[test]
    fn emit_without_observer_is_a_noop() {
        // Must not panic or allocate; just exercises the cold path.
        emit(Sysno::Getpid, SyscallPhase::Enter);
        emit(Sysno::Getpid, SyscallPhase::Exit { errno: 0 });
    }

    #[test]
    fn wake_site_table_matches_discriminants() {
        for (i, site) in WakeSite::ALL.iter().enumerate() {
            assert_eq!(*site as u16 as usize, i);
            assert_eq!(WakeSite::from_u16(i as u16), Some(*site));
        }
        assert_eq!(WakeSite::from_u16(WakeSite::COUNT as u16), None);
        assert_eq!(WakeSite::ALL.len(), WakeSite::COUNT);
    }

    #[test]
    fn wake_site_names_are_unique() {
        let mut names: Vec<&str> = WakeSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WakeSite::COUNT);
        assert_eq!(WakeSite::CoupleHandoff.name(), "couple_handoff");
    }

    #[test]
    fn wake_cell_unarmed_consume_is_a_noop() {
        // No hook installed in this test binary's default state; the cell
        // logic alone must be correct: consuming an unarmed cell is a no-op
        // and an explicit stamp survives exactly one consume.
        let cell = WakeCell::new();
        cell.consume(WakeSite::PipeRead);
        cell.stamp_as(7, 123);
        assert_eq!(cell.armed_ns.swap(0, Ordering::Acquire), 123);
        assert_eq!(cell.armed_ns.load(Ordering::Relaxed), 0);
    }
}
