//! The mount seam and the read-only procfs, driven through the ordinary
//! syscall surface.
//!
//! These tests use the kernel standalone — no `ulp-core` runtime, so no
//! procfs provider is installed and the `ulp` files serve their placeholder
//! body. What's under test here is the *filesystem* semantics: longest-
//! prefix mount dispatch, `self` resolution through the thread binding,
//! `ENOENT` for dead pids, `EROFS` on every write path, `EXDEV` across
//! mounts, and the frozen-at-open content contract (including through
//! `dup2`'d descriptors — the §V-B consistency stakes applied to procfs).

use ulp_kernel::{ArchProfile, Errno, Kernel, OpenFlags, Whence};

/// Read a whole procfs file through the syscall path.
fn read_all(kernel: &ulp_kernel::KernelRef, path: &str) -> Result<String, Errno> {
    let fd = kernel.sys_open(path, OpenFlags::RDONLY)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 64];
    loop {
        let n = kernel.sys_read(fd, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    kernel.sys_close(fd)?;
    Ok(String::from_utf8(out).expect("procfs bodies are UTF-8"))
}

#[test]
fn mount_dispatch_routes_proc_and_tmpfs() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "mounter");
    kernel.bind_current(pid);

    // Plain tmpfs paths still work: the root mount handles everything
    // outside /proc.
    let fd = kernel
        .sys_open("/notes.txt", OpenFlags::RDWR | OpenFlags::CREAT)
        .unwrap();
    kernel.sys_write(fd, b"hello").unwrap();
    kernel.sys_close(fd).unwrap();
    assert_eq!(kernel.sys_stat("/notes.txt").unwrap().size, 5);

    // The root readdir synthesizes the /proc mount point.
    let root = kernel.sys_readdir("/").unwrap();
    let proc_entry = root
        .iter()
        .find(|e| e.name == "proc")
        .expect("mount point visible in parent readdir");
    assert!(proc_entry.is_dir);

    // And /proc itself lists the live pids plus self and ulp.
    let proc_dir = kernel.sys_readdir("/proc").unwrap();
    let names: Vec<&str> = proc_dir.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains(&"1"), "init pid listed: {names:?}");
    assert!(names.contains(&pid.0.to_string().as_str()));
    assert!(names.contains(&"self"), "bound thread sees self");
    assert!(names.contains(&"ulp"));
    let ulp = kernel.sys_readdir("/proc/ulp").unwrap();
    let names: Vec<&str> = ulp.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, ["metrics", "profile", "stat"]);

    // A tmpfs file named like the mount prefix is shadowed, not merged:
    // lookups under /proc never reach the tmpfs.
    assert_eq!(
        kernel.sys_open("/proc/notes.txt", OpenFlags::RDONLY),
        Err(Errno::ENOENT)
    );
    kernel.unbind_current();
}

#[test]
fn proc_self_stat_matches_explicit_pid() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "selfish");
    kernel.bind_current(pid);

    let by_self = read_all(&kernel, "/proc/self/stat").unwrap();
    let by_pid = read_all(&kernel, &format!("/proc/{}/stat", pid.0)).unwrap();
    assert!(by_self.starts_with(&format!("{} (selfish) R ", pid.0)));
    // The two opens happened back to back; only the committed-syscall count
    // can differ between the snapshots (each read_all costs a handful of
    // completed calls). Strip it and the lines must agree.
    let strip = |s: &str| s.split(" syscalls=").next().unwrap().to_string();
    assert_eq!(strip(&by_self), strip(&by_pid));
    assert!(by_self.contains("ppid=0"));
    assert!(by_self.contains("cwd=/"));
    kernel.unbind_current();
}

#[test]
fn syscall_counts_commit_at_exit_and_freeze_at_open() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "counter");
    kernel.bind_current(pid);

    let count_of = |s: &str| -> u64 {
        s.split("syscalls=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };

    // Freeze a snapshot, then issue traffic: the open descriptor must keep
    // serving the at-open state while a fresh open sees the new count.
    let fd = kernel
        .sys_open("/proc/self/stat", OpenFlags::RDONLY)
        .unwrap();
    for _ in 0..10 {
        kernel.sys_getpid().unwrap();
    }
    let mut buf = [0u8; 256];
    let n = kernel.sys_read(fd, &mut buf).unwrap();
    let frozen = String::from_utf8_lossy(&buf[..n]).to_string();
    let later = read_all(&kernel, "/proc/self/stat").unwrap();
    assert!(
        count_of(&later) >= count_of(&frozen) + 10,
        "fresh open sees the traffic: {frozen:?} vs {later:?}"
    );
    // The frozen body excludes its own open: counters commit at syscall
    // exit, after the body was generated.
    let before = read_all(&kernel, "/proc/self/stat").unwrap();
    let again = read_all(&kernel, "/proc/self/stat").unwrap();
    let calls_per_read_all = count_of(&again) - count_of(&before);
    assert!(
        calls_per_read_all >= 1,
        "open/read/close traffic is charged"
    );

    // Rewinding the same descriptor re-serves identical bytes.
    kernel.sys_lseek(fd, 0, Whence::Set).unwrap();
    let m = kernel.sys_read(fd, &mut buf).unwrap();
    assert_eq!(frozen.as_bytes(), &buf[..m]);
    kernel.sys_close(fd).unwrap();
    kernel.unbind_current();
}

#[test]
fn dup2_keeps_frozen_content_alive() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "duper");
    kernel.bind_current(pid);

    let fd = kernel
        .sys_open("/proc/self/stat", OpenFlags::RDONLY)
        .unwrap();
    let mut first = [0u8; 256];
    let n = kernel.sys_read(fd, &mut first).unwrap();

    // dup2 clones the descriptor (shared offset, shared frozen body);
    // closing the original must not release the content.
    let dup = ulp_kernel::Fd(17);
    kernel.sys_dup2(fd, dup).unwrap();
    kernel.sys_close(fd).unwrap();
    kernel.sys_lseek(dup, 0, Whence::Set).unwrap();
    let mut second = [0u8; 256];
    let m = kernel.sys_read(dup, &mut second).unwrap();
    assert_eq!(&first[..n], &second[..m], "dup serves the same snapshot");
    kernel.sys_close(dup).unwrap();

    // After the last descriptor closed the handle is gone for good — a new
    // open mints a fresh ino rather than resurrecting the old body.
    let fd2 = kernel
        .sys_open("/proc/self/stat", OpenFlags::RDONLY)
        .unwrap();
    let mut third = [0u8; 256];
    kernel.sys_read(fd2, &mut third).unwrap();
    kernel.sys_close(fd2).unwrap();
    kernel.unbind_current();
}

#[test]
fn dead_pids_are_enoent_zombies_are_z() {
    let kernel = Kernel::new(ArchProfile::Native);
    let parent = kernel.spawn_process(None, "parent");
    let child = kernel.spawn_process(Some(parent), "child");
    kernel.bind_current(parent);

    assert!(read_all(&kernel, &format!("/proc/{}/stat", child.0))
        .unwrap()
        .contains(" R "));
    kernel.exit_process(child, 0).unwrap();
    // Exited but unreaped: still listed, state Z.
    let stat = read_all(&kernel, &format!("/proc/{}/stat", child.0)).unwrap();
    assert!(stat.contains(" Z "), "zombie visible: {stat:?}");
    // Reaped: gone.
    kernel.waitpid(parent, Some(child)).unwrap();
    assert_eq!(
        kernel.sys_open(&format!("/proc/{}/stat", child.0), OpenFlags::RDONLY),
        Err(Errno::ENOENT)
    );
    assert_eq!(
        kernel.sys_open("/proc/99999/stat", OpenFlags::RDONLY),
        Err(Errno::ENOENT)
    );
    assert_eq!(
        kernel.sys_open("/proc/notapid/stat", OpenFlags::RDONLY),
        Err(Errno::ENOENT)
    );
    kernel.unbind_current();
}

#[test]
fn every_write_path_is_refused() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "writer");
    kernel.bind_current(pid);

    assert_eq!(
        kernel.sys_open("/proc/self/stat", OpenFlags::WRONLY),
        Err(Errno::EROFS)
    );
    assert_eq!(
        kernel.sys_open("/proc/newfile", OpenFlags::WRONLY | OpenFlags::CREAT),
        Err(Errno::EROFS)
    );
    assert_eq!(
        kernel.sys_open("/proc/ulp", OpenFlags::RDWR),
        Err(Errno::EISDIR)
    );
    assert_eq!(kernel.sys_mkdir("/proc/newdir"), Err(Errno::EROFS));
    assert_eq!(kernel.sys_unlink("/proc/ulp/metrics"), Err(Errno::EROFS));
    assert_eq!(kernel.sys_rmdir("/proc/ulp"), Err(Errno::EROFS));
    assert_eq!(
        kernel.sys_rename("/proc/ulp/metrics", "/proc/ulp/renamed"),
        Err(Errno::EROFS)
    );
    // Writing through a read-only descriptor fails at the FD layer.
    let fd = kernel
        .sys_open("/proc/self/stat", OpenFlags::RDONLY)
        .unwrap();
    assert_eq!(kernel.sys_write(fd, b"x"), Err(Errno::EBADF));
    assert_eq!(kernel.sys_ftruncate(fd, 0), Err(Errno::EBADF));
    kernel.sys_close(fd).unwrap();
    kernel.unbind_current();
}

#[test]
fn cross_mount_link_and_rename_are_exdev() {
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "crosser");
    kernel.bind_current(pid);
    let fd = kernel
        .sys_open("/file", OpenFlags::WRONLY | OpenFlags::CREAT)
        .unwrap();
    kernel.sys_close(fd).unwrap();
    assert_eq!(
        kernel.sys_link("/file", "/proc/file"),
        Err(Errno::EXDEV),
        "hard link across the mount seam"
    );
    assert_eq!(kernel.sys_rename("/file", "/proc/file"), Err(Errno::EXDEV));
    assert_eq!(
        kernel.sys_rename("/proc/ulp/metrics", "/m"),
        Err(Errno::EXDEV)
    );
    kernel.unbind_current();
}

#[test]
fn ulp_files_degrade_without_a_runtime_provider() {
    // This test binary never constructs a ulp-core runtime, so no provider
    // is installed process-wide (and even if one were, this thread has no
    // runtime attached): the ulp files serve their placeholder.
    let kernel = Kernel::new(ArchProfile::Native);
    let pid = kernel.spawn_process(None, "bare");
    kernel.bind_current(pid);
    for f in ["metrics", "profile", "stat"] {
        let body = read_all(&kernel, &format!("/proc/ulp/{f}")).unwrap();
        assert_eq!(body, "# ulp runtime not attached\n");
    }
    // stat reports the placeholder's size, consistently.
    let st = kernel.sys_stat("/proc/ulp/metrics").unwrap();
    assert_eq!(st.size, "# ulp runtime not attached\n".len() as u64);
    assert!(!st.is_dir);
    assert!(kernel.sys_stat("/proc/ulp").unwrap().is_dir);
    kernel.unbind_current();
}

#[test]
fn self_routes_per_thread_binding() {
    // The whole syscall surface needs a bound thread (ESRCH otherwise)...
    let kernel = Kernel::new(ArchProfile::Native);
    assert_eq!(
        kernel.sys_open("/proc/self/stat", OpenFlags::RDONLY),
        Err(Errno::ESRCH)
    );
    // ...and `self` resolves through *that thread's* binding: two threads
    // bound to different pids read different stat lines concurrently.
    let a = kernel.spawn_process(None, "thread-a");
    let b = kernel.spawn_process(None, "thread-b");
    kernel.bind_current(a);
    let k2 = kernel.clone();
    let other = std::thread::spawn(move || {
        k2.bind_current(b);
        let line = read_all(&k2, "/proc/self/stat").unwrap();
        k2.unbind_current();
        line
    })
    .join()
    .unwrap();
    let mine = read_all(&kernel, "/proc/self/stat").unwrap();
    assert!(mine.starts_with(&format!("{} (thread-a) ", a.0)));
    assert!(other.starts_with(&format!("{} (thread-b) ", b.0)));
    let body = read_all(&kernel, "/proc/1/stat").unwrap();
    assert!(body.starts_with("1 (init) R "));
    kernel.unbind_current();
}
