//! Readiness-layer edge cases: `poll` timeouts, `epoll_ctl` error paths,
//! registration lifetime across `dup2`, fault-plan `EINTR` injection, and
//! peer-close HUP edges.
//!
//! The fault-injection layer is process-global, so every test takes the
//! file-local lock — the one armed test must not leak `EINTR` into its
//! neighbors (same discipline as the torture harness's run lock).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ulp_kernel::fault::{self, FaultPlan};
use ulp_kernel::poll::EpollOp;
use ulp_kernel::{Errno, Fd, Kernel, KernelRef, Pid, PollEvents, Semaphore, WakeSite};

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn boot() -> (KernelRef, Pid) {
    let k = Kernel::native();
    let pid = k.spawn_process(Some(Pid(1)), "readiness-test");
    k.bind_current(pid);
    (k, pid)
}

#[test]
fn poll_on_never_ready_fd_times_out() {
    let _g = serial();
    let (k, _) = boot();
    let (r, _w) = k.sys_pipe().unwrap();
    let started = Instant::now();
    let revents = k
        .sys_poll(&[(r, PollEvents::IN)], Some(Duration::from_millis(40)))
        .unwrap();
    assert!(
        started.elapsed() >= Duration::from_millis(35),
        "returned {}ms before the timeout",
        started.elapsed().as_millis()
    );
    assert_eq!(revents.len(), 1);
    assert!(revents[0].is_empty(), "nothing was ready: {:?}", revents[0]);
    k.unbind_current();
}

#[test]
fn epoll_ctl_error_paths() {
    let _g = serial();
    let (k, _) = boot();
    let ep = k.sys_epoll_create().unwrap();
    let (r, w) = k.sys_pipe().unwrap();

    // EBADF: the target descriptor is not open.
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Add, Fd(321), PollEvents::IN)
            .unwrap_err(),
        Errno::EBADF
    );
    // ENOENT: Mod/Del before any registration.
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Mod, r, PollEvents::IN)
            .unwrap_err(),
        Errno::ENOENT
    );
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Del, r, PollEvents::IN)
            .unwrap_err(),
        Errno::ENOENT
    );
    // EEXIST: double Add of a live registration.
    k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
        .unwrap();
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
            .unwrap_err(),
        Errno::EEXIST
    );
    // EINVAL: epfd is not an epoll descriptor / watching an epoll / self.
    assert_eq!(
        k.sys_epoll_ctl(w, EpollOp::Add, r, PollEvents::IN)
            .unwrap_err(),
        Errno::EINVAL
    );
    let ep2 = k.sys_epoll_create().unwrap();
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Add, ep2, PollEvents::IN)
            .unwrap_err(),
        Errno::EINVAL
    );
    assert_eq!(
        k.sys_epoll_ctl(ep, EpollOp::Add, ep, PollEvents::IN)
            .unwrap_err(),
        Errno::EINVAL
    );
    // Mod/Del on the live registration succeed.
    k.sys_epoll_ctl(ep, EpollOp::Mod, r, PollEvents::IN)
        .unwrap();
    k.sys_epoll_ctl(ep, EpollOp::Del, r, PollEvents::IN)
        .unwrap();
    k.unbind_current();
}

/// Registration identifies the open file description, not the fd slot: a
/// `dup2` shuffle that closes the original slot leaves the registration
/// live (reported under the fd number used at `Add` time), and only the
/// death of the description itself deregisters.
#[test]
fn readiness_survives_dup2() {
    let _g = serial();
    let (k, _) = boot();
    let ep = k.sys_epoll_create().unwrap();
    let (r, w) = k.sys_pipe().unwrap();
    k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
        .unwrap();

    // Move the read end elsewhere, then close the registered slot.
    let spare = k
        .sys_open(
            "/spare",
            ulp_kernel::OpenFlags::CREAT | ulp_kernel::OpenFlags::WRONLY,
        )
        .unwrap();
    let moved = k.sys_dup2(r, spare).unwrap();
    k.sys_close(r).unwrap();

    k.sys_write(w, b"x").unwrap();
    let got = k
        .sys_epoll_wait(ep, 8, Some(Duration::from_millis(200)))
        .unwrap();
    assert_eq!(got.len(), 1, "registration must survive the dup2 shuffle");
    assert_eq!(got[0].0, r, "reported under the fd used at Add time");
    assert!(got[0].1.contains(PollEvents::IN));

    // Death of the description (last descriptor closed) auto-deregisters.
    k.sys_close(moved).unwrap();
    let got = k
        .sys_epoll_wait(ep, 8, Some(Duration::from_millis(10)))
        .unwrap();
    assert!(got.is_empty(), "dead description must be pruned: {got:?}");
    k.unbind_current();
}

#[test]
fn eintr_mid_epoll_wait_under_fault_plan() {
    let _g = serial();
    let (k, _) = boot();
    let ep = k.sys_epoll_create().unwrap();
    let (r, _w) = k.sys_pipe().unwrap();
    k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
        .unwrap();
    // Every EINTR opportunity fires: the wait must be interrupted long
    // before its generous timeout.
    fault::arm(FaultPlan {
        seed: 7,
        spurious_wake_per_1024: 0,
        eintr_per_1024: 1024,
        eagain_per_1024: 0,
        short_read_per_1024: 0,
        delay_wake_per_1024: 0,
    });
    let started = Instant::now();
    let err = k
        .sys_epoll_wait(ep, 8, Some(Duration::from_secs(10)))
        .unwrap_err();
    fault::disarm();
    assert_eq!(err, Errno::EINTR);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "EINTR must preempt the timeout"
    );
    k.unbind_current();
}

#[test]
fn writer_close_wakes_blocked_epoll_with_hup() {
    let _g = serial();
    let (k, pid) = boot();
    let ep = k.sys_epoll_create().unwrap();
    let (r, w) = k.sys_pipe().unwrap();
    k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
        .unwrap();

    let k2 = k.clone();
    let closer = std::thread::spawn(move || {
        k2.bind_current(pid);
        std::thread::sleep(Duration::from_millis(30));
        k2.sys_close(w).unwrap();
        k2.unbind_current();
    });
    let started = Instant::now();
    let got = k.sys_epoll_wait(ep, 8, None).unwrap();
    closer.join().unwrap();
    assert!(
        started.elapsed() >= Duration::from_millis(20),
        "epoll_wait returned before the close"
    );
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, r);
    assert!(
        got[0].1.contains(PollEvents::HUP),
        "revents: {:?}",
        got[0].1
    );
    assert!(
        got[0].1.contains(PollEvents::IN),
        "EOF is readable (a read returns 0 at once): {:?}",
        got[0].1
    );
    // And the woken reader indeed observes EOF without blocking.
    let mut buf = [0u8; 4];
    assert_eq!(k.sys_read(r, &mut buf).unwrap(), 0);
    k.unbind_current();
}

// ---------------------------------------------------------------------------
// Wake-edge fault coverage: an interrupted or spurious unblock must not emit
// a wake edge, while the genuine wake that finally ends the wait emits
// exactly one. The kernel's wake hooks are process-global (first install
// wins) and `ulp-core` never loads in this binary, so these tests own them;
// every wake test drains the capture buffer under the serial lock before
// the phase it asserts on, so edges leaked by neighboring tests are inert.

static WAKE_CLOCK: AtomicU64 = AtomicU64::new(1);
static CAPTURED: Mutex<Vec<(u64, u64, WakeSite)>> = Mutex::new(Vec::new());

fn capture_wake_edges() {
    ulp_kernel::install_wake_hooks(
        || (7, WAKE_CLOCK.fetch_add(1, Ordering::Relaxed)),
        |waker, armed_ns, site| {
            CAPTURED
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((waker, armed_ns, site));
        },
    );
}

fn drain_wake_edges() -> Vec<(u64, u64, WakeSite)> {
    std::mem::take(&mut *CAPTURED.lock().unwrap_or_else(|e| e.into_inner()))
}

/// An `EINTR` that preempts the sleep ends no wait that a waker caused, so
/// it must not manufacture a wake edge — only the later genuine readiness
/// fire may, and exactly once.
#[test]
fn eintr_epoll_wait_emits_no_wake_edge() {
    let _g = serial();
    capture_wake_edges();
    let (k, pid) = boot();
    let ep = k.sys_epoll_create().unwrap();
    let (r, w) = k.sys_pipe().unwrap();
    k.sys_epoll_ctl(ep, EpollOp::Add, r, PollEvents::IN)
        .unwrap();

    drain_wake_edges();
    fault::arm(FaultPlan {
        seed: 13,
        spurious_wake_per_1024: 0,
        eintr_per_1024: 1024,
        eagain_per_1024: 0,
        short_read_per_1024: 0,
        delay_wake_per_1024: 0,
    });
    let err = k
        .sys_epoll_wait(ep, 8, Some(Duration::from_secs(10)))
        .unwrap_err();
    fault::disarm();
    assert_eq!(err, Errno::EINTR);
    let edges = drain_wake_edges();
    assert!(
        edges.is_empty(),
        "an EINTR'd epoll_wait attributed a wake it never got: {edges:?}"
    );

    // The genuine wake that ends a real sleep emits exactly one edge.
    let k2 = k.clone();
    let writer = std::thread::spawn(move || {
        k2.bind_current(pid);
        std::thread::sleep(Duration::from_millis(30));
        k2.sys_write(w, b"x").unwrap();
        k2.unbind_current();
    });
    let got = k.sys_epoll_wait(ep, 8, None).unwrap();
    writer.join().unwrap();
    assert_eq!(got.len(), 1);
    let edges = drain_wake_edges();
    let epoll_edges: Vec<_> = edges
        .iter()
        .filter(|(_, _, site)| *site == WakeSite::EpollWait)
        .collect();
    assert_eq!(
        epoll_edges.len(),
        1,
        "one blocked epoll_wait, one edge: {edges:?}"
    );
    let (waker, armed_ns, _) = epoll_edges[0];
    assert_eq!(*waker, 7, "edge must carry the stamping thread's identity");
    assert_ne!(*armed_ns, 0, "an armed stamp always has a nonzero clock");
    k.unbind_current();
}

/// A spurious `futex_wait` return re-loops on the permit count without
/// consuming the wake stamp: no permit means no post, and an unarmed cell
/// emits nothing. Only the post that actually supplies the permit is
/// attributed — exactly one edge despite every sleep returning spuriously.
#[test]
fn spurious_futex_wakes_emit_no_edge() {
    let _g = serial();
    capture_wake_edges();
    let sem = Arc::new(Semaphore::new(0));
    drain_wake_edges();
    fault::arm(FaultPlan {
        seed: 11,
        spurious_wake_per_1024: 1024,
        eintr_per_1024: 0,
        eagain_per_1024: 0,
        short_read_per_1024: 0,
        delay_wake_per_1024: 0,
    });
    let poster = {
        let sem = sem.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            sem.post();
        })
    };
    sem.wait();
    poster.join().unwrap();
    fault::disarm();
    let edges = drain_wake_edges();
    assert_eq!(
        edges.len(),
        1,
        "every spurious return must stay unattributed: {edges:?}"
    );
    assert_eq!(edges[0].2, WakeSite::FutexWake);
    assert_eq!(edges[0].0, 7, "the edge belongs to the posting thread");
}

/// Peer close on a socket end wakes a blocked `poll` with `HUP` too — the
/// socket and pipe paths share one wait-queue discipline.
#[test]
fn socket_peer_close_wakes_poll_with_hup() {
    let _g = serial();
    let (k, pid) = boot();
    let (a, b) = k.sys_socketpair().unwrap();
    let k2 = k.clone();
    let closer = std::thread::spawn(move || {
        k2.bind_current(pid);
        std::thread::sleep(Duration::from_millis(30));
        k2.sys_close(a).unwrap();
        k2.unbind_current();
    });
    let revents = k.sys_poll(&[(b, PollEvents::IN)], None).unwrap();
    closer.join().unwrap();
    assert!(revents[0].contains(PollEvents::HUP), "{:?}", revents[0]);
    k.unbind_current();
}
