//! Kernel syscall spans land in the core tracer's shards.
//!
//! The kernel publishes syscall enter/exit callbacks through the observer
//! hook in [`ulp_kernel::trace`]; the `ulp-core` runtime installs an
//! observer that records them — stamped on the *process-wide* trace clock —
//! into the per-KC shards alongside the couple/decouple protocol events.
//! These tests drive real blocking system calls through a runtime and check
//! the resulting records: paired enter/exit, nesting for in-kernel sleeps,
//! shard attribution, monotonic timestamps, and exact-zero overhead with
//! the tracer off.

use std::time::Duration;
use ulp_core::{decouple, sys, Runtime, Sysno, TraceEvent};

/// `(at_ns, kc, coupled)` per enter record.
type Enters = Vec<(u64, u32, bool)>;
/// `(at_ns, kc, coupled, errno)` per exit record.
type Exits = Vec<(u64, u32, bool, i32)>;

/// Every enter/exit record for `name`, in trace order (the merged trace is
/// sorted by timestamp).
fn spans_of(trace: &[ulp_core::TraceRecord], name: &str) -> (Enters, Exits) {
    let mut enters = Vec::new();
    let mut exits = Vec::new();
    for r in trace {
        match r.event {
            TraceEvent::SyscallEnter { sysno, coupled, .. } if sysno.name() == name => {
                enters.push((r.at_ns, r.kc, coupled));
            }
            TraceEvent::SyscallExit {
                sysno,
                coupled,
                errno,
                ..
            } if sysno.name() == name => {
                exits.push((r.at_ns, r.kc, coupled, errno));
            }
            _ => {}
        }
    }
    (enters, exits)
}

/// A read that parks the calling KC in the pipe wait queue emits a nested
/// `pipe_block_read` span inside the `read` span, both on the issuing KC's
/// shard, with monotonically ordered edges.
#[test]
fn blocking_pipe_read_emits_nested_paired_spans() {
    let rt = Runtime::builder().schedulers(1).build();
    rt.trace_enable();
    let kernel = rt.kernel().clone();
    let h = rt.spawn("reader", move || {
        let (r, w) = sys::pipe().unwrap();
        let pid = sys::getpid().unwrap();
        // Same simulated process, different OS thread: bind it to our PID
        // and write after a delay, so the reader demonstrably parks in
        // pipe_block_read first.
        let writer = std::thread::spawn(move || {
            kernel.bind_current(pid);
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(kernel.sys_write(w, b"ping").unwrap(), 4);
            kernel.unbind_current();
        });
        let mut buf = [0u8; 8];
        assert_eq!(sys::read(r, &mut buf).unwrap(), 4);
        writer.join().unwrap();
        0
    });
    assert_eq!(h.wait(), 0);
    let trace = rt.take_trace();

    let (read_in, read_out) = spans_of(&trace, "read");
    let (blk_in, blk_out) = spans_of(&trace, "pipe_block_read");
    assert_eq!(read_in.len(), 1, "exactly one read enter: {read_in:?}");
    assert_eq!(read_out.len(), 1, "exactly one read exit: {read_out:?}");
    assert_eq!(blk_in.len(), 1, "exactly one blocking enter: {blk_in:?}");
    assert_eq!(blk_out.len(), 1, "exactly one blocking exit: {blk_out:?}");

    // Nesting: read ⊇ pipe_block_read, edges in monotonic order.
    assert!(read_in[0].0 <= blk_in[0].0, "read enters before the block");
    assert!(blk_in[0].0 <= blk_out[0].0, "block span is well-ordered");
    assert!(blk_out[0].0 <= read_out[0].0, "read exits after the block");
    // The writer held the reader parked for ~20ms; the block span must
    // cover most of that (shrunk margin for scheduler jitter).
    assert!(
        blk_out[0].0 - blk_in[0].0 >= 10_000_000,
        "block span too short: {}ns",
        blk_out[0].0 - blk_in[0].0
    );

    // All four records sit on the issuing KC's shard, flagged coupled, and
    // both calls succeeded.
    let kc = read_in[0].1;
    assert!(read_out[0].1 == kc && blk_in[0].1 == kc && blk_out[0].1 == kc);
    assert!(read_in[0].2 && blk_in[0].2, "issued while coupled");
    assert_eq!(read_out[0].3, 0);
    assert_eq!(blk_out[0].3, 0);

    // The latency histogram timed both frames.
    let sys = rt.syscall_snapshot();
    assert!(sys.get("read").unwrap().count >= 1);
    assert!(sys.get("pipe_block_read").unwrap().count >= 1);
    assert!(
        sys.get("pipe_block_read").unwrap().max >= 10_000_000,
        "blocked time must dominate the pipe_block_read histogram"
    );
}

/// `nanosleep` is the simplest single-threaded blocking call: its span must
/// cover the requested sleep.
#[test]
fn nanosleep_span_covers_the_sleep() {
    let rt = Runtime::builder().schedulers(1).build();
    rt.trace_enable();
    let h = rt.spawn("sleeper", || {
        sys::sleep(Duration::from_millis(5)).unwrap();
        0
    });
    assert_eq!(h.wait(), 0);
    let trace = rt.take_trace();
    let (enters, exits) = spans_of(&trace, "nanosleep");
    assert_eq!(enters.len(), 1);
    assert_eq!(exits.len(), 1);
    assert!(
        exits[0].0 - enters[0].0 >= 4_000_000,
        "span {}ns shorter than the 5ms sleep",
        exits[0].0 - enters[0].0
    );
    assert!(rt.syscall_snapshot().get("nanosleep").unwrap().count == 1);
}

/// A syscall issued from a decoupled UC is flagged `coupled: false` — the
/// §V-B consistency hazard, visible in the raw records (and rendered as a
/// `syscall_violation` instant by the Perfetto export).
#[test]
fn decoupled_syscall_is_flagged_inconsistent() {
    let rt = Runtime::builder().schedulers(1).build();
    rt.trace_enable();
    let h = rt.spawn("hazard", || {
        decouple().unwrap();
        // Deliberate violation: getpid through the scheduler's binding.
        let _ = sys::getpid();
        0
    });
    assert_eq!(h.wait(), 0);
    let trace = rt.take_trace();
    let (enters, exits) = spans_of(&trace, "getpid");
    assert!(
        enters.iter().any(|&(_, _, coupled)| !coupled),
        "decoupled getpid must be flagged: {enters:?}"
    );
    assert!(exits.iter().any(|&(_, _, coupled, _)| !coupled));
    assert!(!rt.violations().is_empty(), "audit log records the hazard");
}

/// With the tracer off (the default), the kernel's emit path is a single
/// `OnceLock` load plus a relaxed gate check: *zero* records and *zero*
/// histogram samples may appear, exactly — not "few".
#[test]
fn tracer_off_records_exactly_nothing() {
    let rt = Runtime::builder().schedulers(1).build();
    assert!(!rt.trace_enabled());
    let h = rt.spawn("quiet", || {
        for _ in 0..100 {
            sys::getpid().unwrap();
        }
        let (r, w) = sys::pipe().unwrap();
        sys::write(w, b"x").unwrap();
        let mut buf = [0u8; 1];
        sys::read(r, &mut buf).unwrap();
        sys::sleep(Duration::from_millis(1)).unwrap();
        0
    });
    assert_eq!(h.wait(), 0);
    assert!(rt.take_trace().is_empty(), "no records with tracing off");
    assert_eq!(rt.syscall_snapshot().total_count(), 0);
    // The kernel still counted the dispatches — that counter is always on.
    assert!(rt.kernel().total_syscalls() >= 103);
}

/// The observer resolves `Sysno` discriminants back through `from_u16`; the
/// round trip must hold for every call the kernel can emit.
#[test]
fn sysno_round_trips_for_all_calls() {
    for no in Sysno::ALL {
        assert_eq!(Sysno::from_u16(no as u16), Some(no), "{}", no.name());
    }
    assert_eq!(Sysno::from_u16(u16::MAX), None);
}
