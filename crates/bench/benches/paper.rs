//! Criterion benches: the paper's microbenchmarks plus ablations of the
//! design choices DESIGN.md calls out (eager vs lazy trampoline creation,
//! TLS-register switching on/off, ucontext-style signal-mask saving,
//! global-FIFO vs work-stealing scheduling, over-subscription factor).
//!
//! Run: `cargo bench -p ulp-bench` (use `--bench paper -- <filter>` to
//! select a group).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use ulp_core::{coupled_scope, decouple, sys, yield_now, IdlePolicy, Runtime, SchedPolicy};
use ulp_fcontext::Fiber;
use ulp_kernel::{ArchProfile, IoModel};

/// Table III: raw user-level context switch.
fn bench_ctx_switch(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.throughput(Throughput::Elements(2)); // two swaps per resume
    group.bench_function("ctx_switch_roundtrip", |b| {
        let mut fiber = Fiber::new(|sus, _| {
            loop {
                sus.suspend(0);
            }
            #[allow(unreachable_code)]
            0
        })
        .unwrap();
        b.iter(|| fiber.resume(0));
    });
    for profile in [ArchProfile::Native, ArchProfile::Wallaby, ArchProfile::Albireo] {
        group.bench_with_input(
            BenchmarkId::new("tls_load", profile.name()),
            &profile,
            |b, p| {
                b.iter(|| ulp_kernel::spin_for(p.tls_load()));
            },
        );
    }
    group.finish();
}

/// A reusable yield-ping-pong harness returning a closure-driving runtime.
struct YieldPair {
    rt: Runtime,
    stop: Arc<AtomicBool>,
    driver: Option<ulp_core::BltHandle>,
    peer: Option<ulp_core::BltHandle>,
    tick: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

impl YieldPair {
    fn new(policy: IdlePolicy, sched: SchedPolicy, tls: bool, sigmask: bool) -> YieldPair {
        let rt = Runtime::builder()
            .schedulers(1)
            .idle_policy(policy)
            .sched_policy(sched)
            .tls_switch(tls)
            .save_sigmask(sigmask)
            .build();
        let stop = Arc::new(AtomicBool::new(false));
        let tick = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let s2 = stop.clone();
        let peer = rt.spawn("bench-peer", move || {
            decouple().unwrap();
            while !s2.load(Ordering::Acquire) {
                yield_now();
            }
            0
        });
        // The driver ULP performs yields whenever `tick` flips.
        let s3 = stop.clone();
        let t2 = tick.clone();
        let d2 = done.clone();
        let driver = rt.spawn("bench-driver", move || {
            decouple().unwrap();
            while !s3.load(Ordering::Acquire) {
                if t2.swap(false, Ordering::AcqRel) {
                    for _ in 0..1024 {
                        yield_now();
                    }
                    d2.store(true, Ordering::Release);
                } else {
                    yield_now();
                }
            }
            0
        });
        YieldPair {
            rt,
            stop,
            driver: Some(driver),
            peer: Some(peer),
            tick,
            done,
        }
    }

    /// Run 1024 yields on the driver ULP (approximately; measured as a
    /// batch from outside).
    fn batch(&self) {
        self.done.store(false, Ordering::Release);
        self.tick.store(true, Ordering::Release);
        while !self.done.load(Ordering::Acquire) {
            // Yield the observer's timeslice: on few-core hosts a spinning
            // observer would starve the very ULPs it is timing.
            std::thread::yield_now();
        }
    }
}

impl Drop for YieldPair {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(d) = self.driver.take() {
            d.wait();
        }
        if let Some(p) = self.peer.take() {
            p.wait();
        }
        let _ = &self.rt;
    }
}

/// Table IV + ablations: yield cost under different configurations.
fn bench_yield(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_yield");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1024));
    let configs: &[(&str, IdlePolicy, SchedPolicy, bool, bool)] = &[
        ("busywait/fifo", IdlePolicy::BusyWait, SchedPolicy::GlobalFifo, true, false),
        ("busywait/worksteal", IdlePolicy::BusyWait, SchedPolicy::WorkStealing, true, false),
        ("ablate-no-tls", IdlePolicy::BusyWait, SchedPolicy::GlobalFifo, false, false),
        ("ablate-save-sigmask", IdlePolicy::BusyWait, SchedPolicy::GlobalFifo, true, true),
    ];
    for (name, policy, sched, tls, sigmask) in configs {
        group.bench_function(*name, |b| {
            let pair = YieldPair::new(*policy, *sched, *tls, *sigmask);
            b.iter(|| pair.batch());
        });
    }
    group.finish();
}

/// Table V: getpid plain vs enclosed by couple()/decouple().
fn bench_getpid(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_getpid");
    group.sample_size(20);

    group.bench_function("plain_klt", |b| {
        let rt = Runtime::builder().schedulers(1).build();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (dtx, drx) = std::sync::mpsc::channel::<()>();
        let h = rt.spawn("getpid-loop", move || {
            while rx.recv().is_ok() {
                for _ in 0..256 {
                    sys::getpid().unwrap();
                }
                dtx.send(()).unwrap();
            }
            0
        });
        b.iter(|| {
            tx.send(()).unwrap();
            drx.recv().unwrap();
        });
        drop(tx);
        h.wait();
    });

    for (name, policy) in [
        ("coupled_scope/busywait", IdlePolicy::BusyWait),
        ("coupled_scope/blocking", IdlePolicy::Blocking),
    ] {
        group.bench_function(name, |b| {
            let rt = Runtime::builder().schedulers(1).idle_policy(policy).build();
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let (dtx, drx) = std::sync::mpsc::channel::<()>();
            let h = rt.spawn("getpid-ulp", move || {
                decouple().unwrap();
                while rx.recv().is_ok() {
                    for _ in 0..64 {
                        coupled_scope(|| sys::getpid().unwrap()).unwrap();
                    }
                    dtx.send(()).unwrap();
                }
                0
            });
            b.iter(|| {
                tx.send(()).unwrap();
                drx.recv().unwrap();
            });
            drop(tx);
            h.wait();
        });
    }
    group.finish();
}

/// Fig. 7: open-write-close for one representative size per variant.
fn bench_owc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_owc_64k");
    group.sample_size(10);
    use ulp_bench::workloads::{owc_ns, OwcVariant};
    for variant in [
        OwcVariant::Plain,
        OwcVariant::AioReturn,
        OwcVariant::AioSuspend,
        OwcVariant::Ulp(IdlePolicy::BusyWait),
        OwcVariant::Ulp(IdlePolicy::Blocking),
    ] {
        group.bench_function(variant.label(), |b| {
            b.iter_custom(|iters| {
                let ns = owc_ns(
                    variant,
                    64 * 1024,
                    ArchProfile::Native,
                    IoModel::RAW,
                    iters.max(4) as usize,
                );
                std::time::Duration::from_nanos((ns * iters as f64) as u64)
            });
        });
    }
    group.finish();
}

/// Ablation: eager vs lazy trampoline-context creation (spawn+decouple
/// latency).
fn bench_tc_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_tc");
    group.sample_size(10);
    for (name, eager) in [("lazy_tc", false), ("eager_tc", true)] {
        group.bench_function(name, |b| {
            let rt = Runtime::builder()
                .schedulers(1)
                .idle_policy(IdlePolicy::Blocking)
                .eager_tc(eager)
                .build();
            b.iter(|| {
                let h = rt.spawn("tc-bench", || {
                    decouple().unwrap();
                    0
                });
                h.wait()
            });
        });
    }
    group.finish();
}

/// Ablation: over-subscription factor O (eq. 2) — total time for a fixed
/// amount of yield-heavy work split across NB = NCprog x (O+1) BLTs.
fn bench_oversubscription(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_oversubscription");
    group.sample_size(10);
    const TOTAL_WORK: usize = 4096;
    for o in [0usize, 1, 3, 7] {
        let n_blts = o + 1; // NCprog = 1 scheduler
        group.bench_with_input(BenchmarkId::new("factor", o), &n_blts, |b, &n| {
            let rt = Runtime::builder()
                .schedulers(1)
                .idle_policy(IdlePolicy::Blocking)
                .build();
            b.iter(|| {
                let per = TOTAL_WORK / n;
                let handles: Vec<_> = (0..n)
                    .map(|i| {
                        rt.spawn(&format!("o{i}"), move || {
                            decouple().unwrap();
                            for _ in 0..per {
                                yield_now();
                            }
                            0
                        })
                    })
                    .collect();
                for h in handles {
                    h.wait();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ctx_switch,
    bench_yield,
    bench_getpid,
    bench_owc,
    bench_tc_creation,
    bench_oversubscription
);
criterion_main!(benches);
