//! Harness-free benches: the paper's microbenchmarks plus ablations of the
//! design choices DESIGN.md calls out (eager vs lazy trampoline creation,
//! TLS-register switching on/off, ucontext-style signal-mask saving,
//! global-FIFO vs work-stealing scheduling, over-subscription factor).
//!
//! The build environment is offline, so instead of criterion this uses the
//! paper's own protocol from `ulp_bench::measure_min` (warm-up loop, then
//! minimum of ten measured runs). Run:
//! `cargo bench -p ulp-bench --bench paper [-- <filter>]`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use ulp_bench::{measure_min, min_of_runs, sci};
use ulp_core::{coupled_scope, decouple, sys, yield_now, IdlePolicy, Runtime, SchedPolicy};
use ulp_fcontext::Fiber;
use ulp_kernel::{ArchProfile, IoModel};

fn report(group: &str, name: &str, ns_per_op: f64) {
    println!("{group}/{name}: {ns_per_op:.1} ns/op ({})", sci(ns_per_op));
}

/// Table III: raw user-level context switch.
fn bench_ctx_switch() {
    let mut fiber = Fiber::new(|sus, _| {
        loop {
            sus.suspend(0);
        }
        #[allow(unreachable_code)]
        0
    })
    .unwrap();
    // Two swaps per resume.
    let ns = measure_min(10_000, || {
        fiber.resume(0);
    }) / 2.0;
    report("table3", "ctx_switch_oneway", ns);
    for profile in [
        ArchProfile::Native,
        ArchProfile::Wallaby,
        ArchProfile::Albireo,
    ] {
        let ns = measure_min(10_000, || ulp_kernel::spin_for(profile.tls_load()));
        report("table3", &format!("tls_load/{}", profile.name()), ns);
    }
}

/// A reusable yield-ping-pong harness: two decoupled ULPs on one scheduler;
/// the driver runs batches of 1024 yields on demand.
struct YieldPair {
    rt: Runtime,
    stop: Arc<AtomicBool>,
    driver: Option<ulp_core::BltHandle>,
    peer: Option<ulp_core::BltHandle>,
    tick: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
}

impl YieldPair {
    fn new(policy: IdlePolicy, sched: SchedPolicy, tls: bool, sigmask: bool) -> YieldPair {
        let rt = Runtime::builder()
            .schedulers(1)
            .idle_policy(policy)
            .sched_policy(sched)
            .tls_switch(tls)
            .save_sigmask(sigmask)
            .build();
        let stop = Arc::new(AtomicBool::new(false));
        let tick = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        let s2 = stop.clone();
        let peer = rt.spawn("bench-peer", move || {
            decouple().unwrap();
            while !s2.load(Ordering::Acquire) {
                yield_now();
            }
            0
        });
        // The driver ULP performs yields whenever `tick` flips.
        let s3 = stop.clone();
        let t2 = tick.clone();
        let d2 = done.clone();
        let driver = rt.spawn("bench-driver", move || {
            decouple().unwrap();
            while !s3.load(Ordering::Acquire) {
                if t2.swap(false, Ordering::AcqRel) {
                    for _ in 0..1024 {
                        yield_now();
                    }
                    d2.store(true, Ordering::Release);
                } else {
                    yield_now();
                }
            }
            0
        });
        YieldPair {
            rt,
            stop,
            driver: Some(driver),
            peer: Some(peer),
            tick,
            done,
        }
    }

    /// Run 1024 yields on the driver ULP (approximately; measured as a
    /// batch from outside).
    fn batch(&self) {
        self.done.store(false, Ordering::Release);
        self.tick.store(true, Ordering::Release);
        while !self.done.load(Ordering::Acquire) {
            // Yield the observer's timeslice: on few-core hosts a spinning
            // observer would starve the very ULPs it is timing.
            std::thread::yield_now();
        }
    }
}

impl Drop for YieldPair {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(d) = self.driver.take() {
            d.wait();
        }
        if let Some(p) = self.peer.take() {
            p.wait();
        }
        let _ = &self.rt;
    }
}

/// Table IV + ablations: yield cost under different configurations.
fn bench_yield() {
    let configs: &[(&str, IdlePolicy, SchedPolicy, bool, bool)] = &[
        (
            "busywait/fifo",
            IdlePolicy::BusyWait,
            SchedPolicy::GlobalFifo,
            true,
            false,
        ),
        (
            "busywait/worksteal",
            IdlePolicy::BusyWait,
            SchedPolicy::WorkStealing,
            true,
            false,
        ),
        (
            "ablate-no-tls",
            IdlePolicy::BusyWait,
            SchedPolicy::GlobalFifo,
            false,
            false,
        ),
        (
            "ablate-save-sigmask",
            IdlePolicy::BusyWait,
            SchedPolicy::GlobalFifo,
            true,
            true,
        ),
    ];
    for (name, policy, sched, tls, sigmask) in configs {
        let pair = YieldPair::new(*policy, *sched, *tls, *sigmask);
        let ns = min_of_runs(|| {
            let t = std::time::Instant::now();
            pair.batch();
            t.elapsed().as_nanos() as f64 / 1024.0
        });
        report("table4_yield", name, ns);
    }
}

/// Table V: getpid plain vs enclosed by couple()/decouple().
fn bench_getpid() {
    {
        let rt = Runtime::builder().schedulers(1).build();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (dtx, drx) = std::sync::mpsc::channel::<()>();
        let h = rt.spawn("getpid-loop", move || {
            while rx.recv().is_ok() {
                for _ in 0..256 {
                    sys::getpid().unwrap();
                }
                dtx.send(()).unwrap();
            }
            0
        });
        let ns = min_of_runs(|| {
            let t = std::time::Instant::now();
            tx.send(()).unwrap();
            drx.recv().unwrap();
            t.elapsed().as_nanos() as f64 / 256.0
        });
        drop(tx);
        h.wait();
        report("table5_getpid", "plain_klt", ns);
    }

    for (name, policy) in [
        ("coupled_scope/busywait", IdlePolicy::BusyWait),
        ("coupled_scope/blocking", IdlePolicy::Blocking),
    ] {
        let rt = Runtime::builder().schedulers(1).idle_policy(policy).build();
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (dtx, drx) = std::sync::mpsc::channel::<()>();
        let h = rt.spawn("getpid-ulp", move || {
            decouple().unwrap();
            while rx.recv().is_ok() {
                for _ in 0..64 {
                    coupled_scope(|| sys::getpid().unwrap()).unwrap();
                }
                dtx.send(()).unwrap();
            }
            0
        });
        let ns = min_of_runs(|| {
            let t = std::time::Instant::now();
            tx.send(()).unwrap();
            drx.recv().unwrap();
            t.elapsed().as_nanos() as f64 / 64.0
        });
        drop(tx);
        h.wait();
        report("table5_getpid", name, ns);
    }
}

/// Fig. 7: open-write-close for one representative size per variant.
fn bench_owc() {
    use ulp_bench::workloads::{owc_ns, OwcVariant};
    for variant in [
        OwcVariant::Plain,
        OwcVariant::AioReturn,
        OwcVariant::AioSuspend,
        OwcVariant::Ulp(IdlePolicy::BusyWait),
        OwcVariant::Ulp(IdlePolicy::Blocking),
    ] {
        let ns = owc_ns(variant, 64 * 1024, ArchProfile::Native, IoModel::RAW, 16);
        report("fig7_owc_64k", variant.label(), ns);
    }
}

/// Ablation: eager vs lazy trampoline-context creation (spawn+decouple
/// latency).
fn bench_tc_creation() {
    for (name, eager) in [("lazy_tc", false), ("eager_tc", true)] {
        let rt = Runtime::builder()
            .schedulers(1)
            .idle_policy(IdlePolicy::Blocking)
            .eager_tc(eager)
            .build();
        let ns = min_of_runs(|| {
            let t = std::time::Instant::now();
            for _ in 0..16 {
                let h = rt.spawn("tc-bench", || {
                    decouple().unwrap();
                    0
                });
                h.wait();
            }
            t.elapsed().as_nanos() as f64 / 16.0
        });
        report("ablate_tc", name, ns);
    }
}

/// Ablation: over-subscription factor O (eq. 2) — total time for a fixed
/// amount of yield-heavy work split across NB = NCprog x (O+1) BLTs.
fn bench_oversubscription() {
    const TOTAL_WORK: usize = 4096;
    for o in [0usize, 1, 3, 7] {
        let n = o + 1; // NCprog = 1 scheduler
        let rt = Runtime::builder()
            .schedulers(1)
            .idle_policy(IdlePolicy::Blocking)
            .build();
        let ns = min_of_runs(|| {
            let t = std::time::Instant::now();
            let per = TOTAL_WORK / n;
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    rt.spawn(&format!("o{i}"), move || {
                        decouple().unwrap();
                        for _ in 0..per {
                            yield_now();
                        }
                        0
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
            t.elapsed().as_nanos() as f64
        });
        report("ablate_oversubscription", &format!("factor_{o}"), ns);
    }
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let groups: &[(&str, fn())] = &[
        ("table3", bench_ctx_switch),
        ("table4_yield", bench_yield),
        ("table5_getpid", bench_getpid),
        ("fig7_owc_64k", bench_owc),
        ("ablate_tc", bench_tc_creation),
        ("ablate_oversubscription", bench_oversubscription),
    ];
    for (name, f) in groups {
        if filter.is_empty() || name.contains(&filter) {
            f();
        }
    }
}
