//! One function per paper artifact; the `table3`/`table4`/`table5`/`fig7`/
//! `fig8` binaries (and `repro_all`) are thin wrappers around these.

use crate::baselines;
use crate::report::Table;
use crate::workloads::{self, OwcVariant};
use crate::{human_size, ns_to_cycles, sci, BUFFER_SIZES};
use ulp_core::IdlePolicy;
use ulp_kernel::{ArchProfile, IoModel};

/// Iteration scale knob: 1 = quick, 10 = paper-grade.
pub fn scale() -> usize {
    std::env::var("ULP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

const PROFILES: [ArchProfile; 3] = [
    ArchProfile::Native,
    ArchProfile::Wallaby,
    ArchProfile::Albireo,
];

/// Table III — context switch and TLS-register load.
pub fn table3() -> Table {
    let iters = 20_000 * scale();
    let mut t = Table::new(
        "Table III: Context Switch and Load TLS (paper: Wallaby 3.34E-8/86cyc & 1.09E-7/284cyc; Albireo 2.45E-8 & 2.50E-9)",
        &["metric", "profile", "time[s]", "ns", "cycles"],
    );
    let ctx = workloads::ctx_switch_ns(iters);
    t.row(vec![
        "Context Sw.".into(),
        "native(measured)".into(),
        sci(ctx),
        format!("{ctx:.1}"),
        ns_to_cycles(ctx).to_string(),
    ]);
    for p in PROFILES {
        let tls = workloads::tls_load_ns(p, iters);
        t.row(vec![
            "Load TLS".into(),
            p.name().into(),
            sci(tls),
            format!("{tls:.1}"),
            ns_to_cycles(tls).to_string(),
        ]);
    }
    t
}

/// Table IV — yielding two ULPs vs `sched_yield`.
pub fn table4() -> Table {
    let iters = 5_000 * scale();
    let mut t = Table::new(
        "Table IV: Yielding Time, 2 ULPs or PThreads (paper Wallaby: ULP 1.50E-7, 1core 2.66E-7, 2cores 7.79E-8)",
        &["variant", "profile", "time[s]", "ns/yield", "cycles", "note"],
    );
    for p in [
        ArchProfile::Native,
        ArchProfile::Wallaby,
        ArchProfile::Albireo,
    ] {
        let ns = workloads::ulp_yield_ns(IdlePolicy::BusyWait, p, iters);
        t.row(vec![
            "ULP yield".into(),
            p.name().into(),
            sci(ns),
            format!("{ns:.1}"),
            ns_to_cycles(ns).to_string(),
            String::new(),
        ]);
    }
    let one = baselines::sched_yield_ns(false, iters);
    t.row(vec![
        "sched_yield() 1 core".into(),
        "host".into(),
        sci(one.ns_per_yield),
        format!("{:.1}", one.ns_per_yield),
        ns_to_cycles(one.ns_per_yield).to_string(),
        if one.pinned {
            String::new()
        } else {
            "unpinned".into()
        },
    ]);
    let two = baselines::sched_yield_ns(true, iters);
    t.row(vec![
        "sched_yield() 2 cores".into(),
        "host".into(),
        sci(two.ns_per_yield),
        format!("{:.1}", two.ns_per_yield),
        ns_to_cycles(two.ns_per_yield).to_string(),
        if two.pinned {
            String::new()
        } else {
            format!(
                "only {} cpu(s): degraded to shared core",
                baselines::n_cpus()
            )
        },
    ]);
    t
}

/// Table V — `getpid()` plain vs enclosed in couple()/decouple().
pub fn table5() -> Table {
    let iters = 2_000 * scale();
    let mut t = Table::new(
        "Table V: Time of getpid() (paper Wallaby: Linux 6.71E-8, BUSYWAIT 1.33E-6, BLOCKING 2.91E-6)",
        &["variant", "profile", "time[s]", "ns", "cycles"],
    );
    let real = baselines::real_getpid_ns(iters);
    t.row(vec![
        "Linux getpid(2) (host)".into(),
        "host".into(),
        sci(real),
        format!("{real:.1}"),
        ns_to_cycles(real).to_string(),
    ]);
    for p in PROFILES {
        let plain = workloads::getpid_plain_ns(p, iters);
        t.row(vec![
            "simkernel getpid".into(),
            p.name().into(),
            sci(plain),
            format!("{plain:.1}"),
            ns_to_cycles(plain).to_string(),
        ]);
    }
    for (label, policy) in [
        ("ULP-PiP: BUSYWAIT", IdlePolicy::BusyWait),
        ("ULP-PiP: BLOCKING", IdlePolicy::Blocking),
    ] {
        for p in PROFILES {
            let ns = workloads::getpid_coupled_ns(policy, p, iters / 2);
            t.row(vec![
                label.into(),
                p.name().into(),
                sci(ns),
                format!("{ns:.1}"),
                ns_to_cycles(ns).to_string(),
            ]);
        }
    }
    t
}

const FIG_VARIANTS: [OwcVariant; 5] = [
    OwcVariant::Plain,
    OwcVariant::AioReturn,
    OwcVariant::AioSuspend,
    OwcVariant::Ulp(IdlePolicy::BusyWait),
    OwcVariant::Ulp(IdlePolicy::Blocking),
];

/// Figure 7 — slowdown of open-write-close relative to plain system calls,
/// over the write-buffer size sweep.
pub fn fig7(profile: ArchProfile) -> Table {
    let io = IoModel::MEMORY_BANDWIDTH;
    let mut t = Table::new(
        &format!(
            "Figure 7 [{}]: open-write-close slowdown vs plain (paper: ULP < AIO on Wallaby at all sizes; slowdown decreases with size)",
            profile.name()
        ),
        &["size", "plain[us]", "AIO-return", "AIO-suspend", "ULP-BUSYWAIT", "ULP-BLOCKING"],
    );
    for &size in &BUFFER_SIZES {
        let iters = (64 * scale()).max(8).min(20_000_000 / size.max(1)).max(4);
        let plain = workloads::owc_ns(OwcVariant::Plain, size, profile, io, iters);
        let mut row = vec![human_size(size), format!("{:.2}", plain / 1_000.0)];
        for v in &FIG_VARIANTS[1..] {
            let ns = workloads::owc_ns(*v, size, profile, io, iters);
            row.push(format!("{:.3}", ns / plain));
        }
        t.row(row);
    }
    t
}

/// Figure 8 — overlap ratios by the Intel MPI Benchmarks method.
pub fn fig8(profile: ArchProfile) -> Table {
    let io = IoModel::MEMORY_BANDWIDTH;
    let mut t = Table::new(
        &format!(
            "Figure 8 [{}]: overlap ratio %% (paper: ULP > 70%% on Wallaby / > 80%% on Albireo; all AIO < 70%%)",
            profile.name()
        ),
        &["size", "plain", "AIO-return", "AIO-suspend", "ULP-BUSYWAIT", "ULP-BLOCKING"],
    );
    // Overlap needs operations long enough to hide compute in; use the
    // larger half of the sweep.
    for &size in &BUFFER_SIZES[3..] {
        let mut row = vec![human_size(size)];
        for v in &FIG_VARIANTS {
            let r = workloads::overlap(*v, size, profile, io);
            row.push(format!("{:.1}", r.ratio));
        }
        t.row(row);
    }
    t
}

/// Run one artifact, print it, and save its CSV.
pub fn run_and_save(name: &str, table: Table) {
    println!("{}", table.render());
    let path = crate::report::results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}
