//! Readiness-driven echo-server throughput: `BENCH_3.json`.
//!
//! Emitted by `repro_all` (and the standalone `bench3` binary). Each row
//! runs N client ULPs against M server ULPs over the in-kernel loopback
//! sockets; every server multiplexes its listener and all accepted
//! connections through one level-triggered epoll descriptor, so a single
//! blocked `epoll_wait` is the only place a server sleeps. Clients record
//! per-request round-trip latency into log2 histograms
//! ([`ulp_core::hist::LatencyHist`]); the row reports requests/sec plus
//! the p50/p99 of the folded distribution — the tail is the whole point
//! of serving benchmarks (see `SERVING.md`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ulp_core::hist::{HistData, LatencyHist};
use ulp_core::{coupled_scope, decouple, sys, EpollOp, IdlePolicy, Listener, PollEvents, Runtime};
use ulp_kernel::Fd;

/// Request/reply frame size in bytes (one cache line, far below the socket
/// watermark, so request writes never block).
pub const FRAME: usize = 32;

/// One measured echo configuration.
#[derive(Debug, Clone, Copy)]
pub struct EchoRow {
    /// Server ULPs (one listener + one epoll loop each).
    pub servers: usize,
    /// Client ULPs, assigned round-robin across the listeners.
    pub clients: usize,
    /// Requests issued per client.
    pub requests_per_client: usize,
    /// Aggregate completed requests per second.
    pub reqs_per_sec: f64,
    /// Median request round-trip in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile request round-trip in nanoseconds.
    pub p99_ns: f64,
    /// Mean request round-trip in nanoseconds.
    pub mean_ns: f64,
    /// Worst observed request round-trip in nanoseconds.
    pub max_ns: u64,
    /// Wake edges recorded across the whole row (every site).
    pub wake_edges: u64,
    /// Total wake-to-run nanoseconds attributed by those edges.
    pub wake_delay_ns: u64,
    /// Mean attributed wake delay per request — the blocked/queued share.
    pub wake_mean_ns: f64,
    /// Mean round trip minus mean wake delay (floored at zero) — the time a
    /// request spent being *worked on* rather than waiting to be noticed.
    /// Approximate: server-side wake delays overlap the client's clock, and
    /// scheduler queueing of unrelated ULPs is counted too.
    pub service_mean_ns: f64,
}

/// One full BENCH_3 sweep.
#[derive(Debug, Clone)]
pub struct Bench3 {
    /// One row per (servers, clients) point, in sweep order.
    pub rows: Vec<EchoRow>,
}

fn read_full(fd: Fd, buf: &mut [u8]) {
    let mut got = 0;
    while got < buf.len() {
        let n = sys::read(fd, &mut buf[got..]).expect("read");
        assert!(n > 0, "peer hung up mid-frame");
        got += n;
    }
}

fn write_full(fd: Fd, data: &[u8]) {
    let mut sent = 0;
    while sent < data.len() {
        sent += sys::write(fd, &data[sent..]).expect("write");
    }
}

fn serve(listener: Arc<Listener>, expected_conns: usize, echoed: Arc<AtomicU64>) {
    decouple().unwrap();
    // A server spends its whole life in system calls: one coupled scope.
    coupled_scope(|| {
        let lfd = sys::listen(&listener).unwrap();
        let ep = sys::epoll_create().unwrap();
        sys::epoll_ctl(ep, EpollOp::Add, lfd, PollEvents::IN).unwrap();
        let mut closed = 0usize;
        let mut buf = [0u8; FRAME];
        while closed < expected_conns {
            let events = sys::epoll_wait(ep, 32, Some(Duration::from_millis(500))).unwrap();
            for (fd, ev) in events {
                if fd == lfd {
                    let conn = sys::accept(lfd).unwrap();
                    sys::epoll_ctl(ep, EpollOp::Add, conn, PollEvents::IN).unwrap();
                } else if ev.intersects(PollEvents::IN | PollEvents::HUP) {
                    let n = sys::read(fd, &mut buf).unwrap();
                    if n == 0 {
                        sys::epoll_ctl(ep, EpollOp::Del, fd, PollEvents::NONE).unwrap();
                        sys::close(fd).unwrap();
                        closed += 1;
                    } else {
                        write_full(fd, &buf[..n]);
                        echoed.fetch_add(n as u64, Ordering::Relaxed);
                    }
                }
            }
        }
        sys::close(ep).unwrap();
        sys::close(lfd).unwrap();
    })
    .unwrap();
}

fn run_client(id: usize, requests: usize, listener: Arc<Listener>, hist: Arc<LatencyHist>) {
    decouple().unwrap();
    let fd = coupled_scope(|| sys::connect(&listener).unwrap()).unwrap();
    let mut req = [0u8; FRAME];
    let mut reply = [0u8; FRAME];
    for r in 0..requests {
        for (i, b) in req.iter_mut().enumerate() {
            *b = (id.wrapping_mul(31) ^ r.wrapping_mul(7) ^ i) as u8;
        }
        let t = Instant::now();
        coupled_scope(|| {
            write_full(fd, &req);
            read_full(fd, &mut reply);
        })
        .unwrap();
        hist.record(t.elapsed().as_nanos() as u64);
        assert_eq!(reply, req, "client {id} request {r}: reply not byte-exact");
    }
    coupled_scope(|| sys::close(fd).unwrap()).unwrap();
}

/// Run one echo configuration to completion and fold the measurement.
///
/// Panics if any reply is not byte-exact or any request goes unanswered —
/// a throughput number from a broken server is worse than no number.
pub fn echo_throughput(servers: usize, clients: usize, requests_per_client: usize) -> EchoRow {
    let rt = Runtime::builder()
        .schedulers(2)
        .idle_policy(IdlePolicy::Blocking)
        .build();
    // Tracing stays on for the whole row: the wake-delay/service split is
    // folded from the wake-to-run histograms, so the row measures the
    // served-with-observability configuration (see OBSERVABILITY.md).
    rt.trace_enable();
    let listeners: Vec<Arc<Listener>> = (0..servers).map(|_| Listener::new()).collect();
    let echoed = Arc::new(AtomicU64::new(0));
    let hists: Vec<Arc<LatencyHist>> = (0..clients)
        .map(|_| Arc::new(LatencyHist::default()))
        .collect();
    let mut assigned = vec![0usize; servers];
    for c in 0..clients {
        assigned[c % servers] += 1;
    }

    let started = Instant::now();
    let server_handles: Vec<_> = listeners
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let (l, n, e) = (l.clone(), assigned[i], echoed.clone());
            rt.spawn(&format!("echo-server{i}"), move || {
                serve(l, n, e);
                0
            })
        })
        .collect();
    let client_handles: Vec<_> = (0..clients)
        .map(|c| {
            let (l, h) = (listeners[c % servers].clone(), hists[c].clone());
            rt.spawn(&format!("echo-client{c}"), move || {
                run_client(c, requests_per_client, l, h);
                0
            })
        })
        .collect();
    for h in client_handles {
        assert_eq!(h.wait(), 0);
    }
    for h in server_handles {
        assert_eq!(h.wait(), 0);
    }
    let wall = started.elapsed();

    let total = (clients * requests_per_client) as u64;
    let mut fold = HistData::default();
    for h in &hists {
        h.fold_into(&mut fold);
    }
    assert_eq!(fold.count, total, "every request must be answered");
    assert_eq!(
        echoed.load(Ordering::Relaxed),
        total * FRAME as u64,
        "servers must echo every request byte"
    );
    let wake = rt.latency_snapshot().wake;
    let (wake_edges, wake_delay_ns) = (wake.total_count(), wake.total_sum());
    let mean_ns = fold.sum as f64 / fold.count.max(1) as f64;
    let wake_mean_ns = wake_delay_ns as f64 / total.max(1) as f64;
    EchoRow {
        servers,
        clients,
        requests_per_client,
        reqs_per_sec: total as f64 / wall.as_secs_f64(),
        p50_ns: fold.p50(),
        p99_ns: fold.p99(),
        mean_ns,
        max_ns: fold.max,
        wake_edges,
        wake_delay_ns,
        wake_mean_ns,
        service_mean_ns: (mean_ns - wake_mean_ns).max(0.0),
    }
}

/// The (servers, clients) sweep: single server under growing load, then
/// scale the servers with the load.
const SWEEP: [(usize, usize); 3] = [(1, 4), (2, 8), (4, 16)];

/// Run the BENCH_3 measurements (scale-aware: `ULP_BENCH_SCALE` multiplies
/// the per-client request count; a single pass per row — throughput over a
/// full workload, not a min-of-ten microbenchmark).
pub fn measure() -> Bench3 {
    let requests = 64 * crate::repro::scale();
    Bench3 {
        rows: SWEEP
            .iter()
            .map(|&(s, c)| echo_throughput(s, c, requests))
            .collect(),
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Hand-rolled JSON (the build environment is offline; no serde).
pub fn to_json(b: &Bench3) -> String {
    let rows: Vec<String> = b
        .rows
        .iter()
        .map(|r| {
            format!(
                "    \"echo_{}s_{}c\": {{\"servers\": {}, \"clients\": {}, \"requests_per_client\": {}, \"reqs_per_sec\": {}, \"latency_ns\": {{\"p50\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}}, \"wake_split\": {{\"edges\": {}, \"delay_total_ns\": {}, \"per_request_wake_ns\": {}, \"per_request_service_ns\": {}}}}}",
                r.servers,
                r.clients,
                r.servers,
                r.clients,
                r.requests_per_client,
                json_num(r.reqs_per_sec),
                json_num(r.p50_ns),
                json_num(r.p99_ns),
                json_num(r.mean_ns),
                r.max_ns,
                r.wake_edges,
                r.wake_delay_ns,
                json_num(r.wake_mean_ns),
                json_num(r.service_mean_ns),
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"ulp-rs epoll echo server (loopback sockets)\",\n  \"protocol\": \"N client ULPs round-robin over M epoll-driven server ULPs, {FRAME}-byte frames, byte-exact verification, wake tracing on; latency = per-request round trip folded from per-client log2 histograms; wake_split = wake-to-run nanoseconds attributed by wake edges vs the remainder (approximate: server-side wakes overlap the client clock)\",\n  \"echo\": {{\n{}\n  }}\n}}\n",
        rows.join(",\n"),
    )
}

/// Measure, print, and drop `BENCH_3.json` in the results directory.
pub fn run_and_save() {
    let b = measure();
    let json = to_json(&b);
    print!("{json}");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_3.json");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[json] failed to create {}: {e}", dir.display());
        return;
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_enough() {
        let b = Bench3 {
            rows: vec![
                EchoRow {
                    servers: 1,
                    clients: 4,
                    requests_per_client: 64,
                    reqs_per_sec: 50_000.0,
                    p50_ns: 30_000.0,
                    p99_ns: 900_000.0,
                    mean_ns: 60_000.0,
                    max_ns: 2_000_000,
                    wake_edges: 512,
                    wake_delay_ns: 10_240_000,
                    wake_mean_ns: 40_000.0,
                    service_mean_ns: 20_000.0,
                },
                EchoRow {
                    servers: 2,
                    clients: 8,
                    requests_per_client: 64,
                    reqs_per_sec: f64::INFINITY,
                    p50_ns: f64::NAN,
                    p99_ns: f64::NAN,
                    mean_ns: f64::NAN,
                    max_ns: 0,
                    wake_edges: 0,
                    wake_delay_ns: 0,
                    wake_mean_ns: f64::NAN,
                    service_mean_ns: f64::NAN,
                },
            ],
        };
        let s = to_json(&b);
        assert!(s.contains("\"echo_1s_4c\""));
        assert!(s.contains("\"reqs_per_sec\": 50000.0"));
        assert!(s.contains("\"p99\": 900000.0"));
        assert!(s.contains("\"wake_split\": {\"edges\": 512, \"delay_total_ns\": 10240000"));
        assert!(s.contains("\"per_request_service_ns\": 20000.0"));
        // An unmeasured row still renders valid JSON.
        assert!(s.contains("\"reqs_per_sec\": null"));
        assert!(s.contains("\"per_request_wake_ns\": null"));
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced JSON: {s}"
        );
    }

    #[test]
    fn echo_round_trips_and_measures() {
        // A tiny measured run: every request answered byte-exact, and the
        // folded histogram yields a usable tail even at smoke counts.
        let r = echo_throughput(2, 4, 8);
        assert!(r.reqs_per_sec.is_finite() && r.reqs_per_sec > 0.0);
        assert!(r.p99_ns.is_finite() && r.p99_ns > 0.0);
        assert!(r.p99_ns >= r.p50_ns, "p99 {} < p50 {}", r.p99_ns, r.p50_ns);
        assert!(r.max_ns > 0);
        // The split is live: an epoll echo run without wake edges means the
        // attribution layer fell off.
        assert!(r.wake_edges > 0, "no wake edges recorded");
        assert!(
            r.wake_delay_ns > 0,
            "edges recorded but no delay attributed"
        );
        assert!(r.wake_mean_ns > 0.0);
        assert!(r.service_mean_ns >= 0.0 && r.service_mean_ns.is_finite());
    }
}
