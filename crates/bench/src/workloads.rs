//! Workload implementations behind every table and figure.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ulp_core::{
    couple, coupled_scope, decouple, pending_couplers, sys, yield_now, IdlePolicy, RawUlpLock,
    Runtime, SchedPolicy, UlpLock,
};
use ulp_fcontext::Fiber;
use ulp_kernel::{ArchProfile, IoModel, OpenFlags};

// ---------------------------------------------------------------- Table III

/// One user-level context switch (half of a fiber round trip), ns.
pub fn ctx_switch_ns(iters: usize) -> f64 {
    let mut fiber = Fiber::new(move |sus, _| {
        loop {
            sus.suspend(0);
        }
        #[allow(unreachable_code)]
        0
    })
    .expect("fiber");
    crate::measure_min(iters, || {
        fiber.resume(0); // 2 swaps per resume (in + out)
    }) / 2.0
}

thread_local! {
    static EMULATED_TLS_REGISTER: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// One TLS-register load under the given architecture profile, ns.
/// `Native` measures the emulated register write itself; `Wallaby` /
/// `Albireo` add the measured cost of the real operation (`arch_prctl`
/// system call vs. `tpidr_el0` write — Table III).
pub fn tls_load_ns(profile: ArchProfile, iters: usize) -> f64 {
    let mut v = 0usize;
    crate::measure_min(iters, || {
        v = v.wrapping_add(1);
        EMULATED_TLS_REGISTER.with(|r| r.set(v));
        ulp_kernel::spin_for(profile.tls_load());
    })
}

// ---------------------------------------------------------------- Table IV

/// Two decoupled ULPs yielding to each other on one scheduler, ns per
/// yield (Table IV row 1). The returned value is already min-of-runs.
pub fn ulp_yield_ns(policy: IdlePolicy, profile: ArchProfile, iters: usize) -> f64 {
    ulp_yield_ns_sched(policy, SchedPolicy::GlobalFifo, profile, iters)
}

/// [`ulp_yield_ns`] with an explicit scheduling discipline (the BENCH_1
/// hot-path metric is reported under both).
pub fn ulp_yield_ns_sched(
    policy: IdlePolicy,
    sched: SchedPolicy,
    profile: ArchProfile,
    iters: usize,
) -> f64 {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(policy)
        .sched_policy(sched)
        .profile(profile)
        .build();
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let peer_up = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    // The partner yields forever until told to stop.
    let p2 = peer_up.clone();
    let s2 = stop.clone();
    let partner = rt.spawn("yield-peer", move || {
        decouple().unwrap();
        p2.store(true, Ordering::Release);
        while !s2.load(Ordering::Acquire) {
            yield_now();
        }
        0
    });

    let r2 = result.clone();
    let p3 = peer_up.clone();
    let s3 = stop.clone();
    let measurer = rt.spawn("yield-meas", move || {
        decouple().unwrap();
        while !p3.load(Ordering::Acquire) {
            yield_now();
        }
        let mut best = f64::INFINITY;
        for _ in 0..crate::RUNS {
            for _ in 0..(iters / 10 + 1) {
                yield_now();
            }
            let t = Instant::now();
            for _ in 0..iters {
                yield_now();
            }
            // One measured iteration is a round trip = two yields.
            best = best.min(t.elapsed().as_nanos() as f64 / (2 * iters) as f64);
        }
        *r2.lock() = best;
        s3.store(true, Ordering::Release);
        0
    });

    measurer.wait();
    partner.wait();
    let best = *result.lock();
    drop(rt);
    best
}

// ---------------------------------------------------------------- Table V

/// Plain `getpid` on a coupled BLT (the "Linux" row analogue against the
/// simulated kernel), ns.
pub fn getpid_plain_ns(profile: ArchProfile, iters: usize) -> f64 {
    let rt = Runtime::builder().schedulers(1).profile(profile).build();
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let r2 = result.clone();
    rt.spawn("getpid-plain", move || {
        *r2.lock() = crate::measure_min(iters, || {
            sys::getpid().unwrap();
        });
        0
    })
    .wait();
    let v = *result.lock();
    v
}

/// `getpid` enclosed in `couple()`/`decouple()` from a decoupled ULP
/// (Table V's ULP-PiP rows), ns per enclosed call.
pub fn getpid_coupled_ns(policy: IdlePolicy, profile: ArchProfile, iters: usize) -> f64 {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(policy)
        .profile(profile)
        .build();
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let r2 = result.clone();
    rt.spawn("getpid-ulp", move || {
        decouple().unwrap();
        *r2.lock() = crate::measure_min(iters, || {
            coupled_scope(|| {
                sys::getpid().unwrap();
            })
            .unwrap();
        });
        0
    })
    .wait();
    let v = *result.lock();
    v
}

/// A bare couple()+decouple() round trip (no enclosed system call) from a
/// decoupled ULP — the cost of the Table-I transition protocol itself, ns.
pub fn couple_rtt_ns(policy: IdlePolicy, profile: ArchProfile, iters: usize) -> f64 {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(policy)
        .profile(profile)
        .build();
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let r2 = result.clone();
    rt.spawn("couple-rtt", move || {
        decouple().unwrap();
        *r2.lock() = crate::measure_min(iters, || {
            coupled_scope(|| ()).unwrap();
        });
        0
    })
    .wait();
    let v = *result.lock();
    v
}

// --------------------------------------------------- direct-handoff coupling

/// Result of the direct-handoff ping-pong measurement.
#[derive(Debug, Clone, Copy)]
pub struct HandoffRtt {
    /// ns per couple()+decouple() round trip on the fast path.
    pub rtt_ns: f64,
    /// Fraction of decouples that hit the handoff fast path, in [0, 1],
    /// from the runtime's own `couple_handoffs` / `decouples` counters.
    pub hit_rate: f64,
}

/// Spin (OS-yielding, so a single-core host can run the peer) until the
/// calling UC's KC has exactly one couple requester parked. Bounded so a
/// broken handoff protocol aborts the bench instead of hanging it.
fn wait_for_pending_coupler() {
    let mut spins = 0u64;
    while pending_couplers() != Some(1) {
        std::thread::yield_now();
        spins += 1;
        assert!(spins <= 200_000_000, "handoff ping-pong wedged");
    }
}

/// The couple/decouple round trip on the **direct-handoff fast path**: a
/// primary and a sibling sharing one original KC ping-pong couples, so
/// every decouple finds the peer's request already parked in `pending` and
/// switches straight into it — 2 switches per round trip instead of the
/// slow path's 4, the trampoline never runs, and no futex syscall fires.
///
/// The wait-before-decouple discipline from the hot-path tests keeps the
/// orbit deterministic: each side transitions only once the peer's request
/// is parked. One ping-pong round retires one couple()+decouple() pair *per
/// UC*, so the reported RTT is the round wall time halved (min-of-runs
/// protocol, like every other mean in the suite).
pub fn couple_handoff_rtt(policy: IdlePolicy, profile: ArchProfile, iters: usize) -> HandoffRtt {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(policy)
        .profile(profile)
        .build();
    let warm = iters / 10 + 1;
    let rounds = crate::RUNS * (warm + iters);
    let before = rt.stats().snapshot();
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let r2 = result.clone();
    let h = rt.spawn("handoff-rtt-a", move || {
        // The sibling's first parked request anchors the orbit; from here
        // on every decouple — warm-up and measured — hands off.
        wait_for_pending_coupler();
        let mut best = f64::INFINITY;
        for _ in 0..crate::RUNS {
            for _ in 0..warm {
                decouple().unwrap();
                couple().unwrap();
                wait_for_pending_coupler();
            }
            let t = Instant::now();
            for _ in 0..iters {
                decouple().unwrap();
                couple().unwrap();
                wait_for_pending_coupler();
            }
            // Each round retires two full RTTs (one per UC).
            best = best.min(t.elapsed().as_nanos() as f64 / (2 * iters) as f64);
        }
        *r2.lock() = best;
        // Release the peer, whose last couple request is still parked.
        decouple().unwrap();
        0
    });
    let sib = h
        .spawn_sibling("handoff-rtt-b", move || {
            // One more couple than the primary's rounds: the final one is
            // completed by the primary's releasing decouple, after which we
            // terminate coupled (paper rule 7).
            for i in 0..(rounds + 1) {
                couple().unwrap();
                if i < rounds {
                    wait_for_pending_coupler();
                    decouple().unwrap();
                }
            }
            0
        })
        .unwrap();
    assert_eq!(sib.wait(), 0);
    assert_eq!(h.wait(), 0);
    let d = rt.stats().snapshot().delta(&before);
    let hit_rate = if d.decouples > 0 {
        d.couple_handoffs as f64 / d.decouples as f64
    } else {
        0.0
    };
    let rtt_ns = *result.lock();
    drop(rt);
    HandoffRtt { rtt_ns, hit_rate }
}

// ---------------------------------------------------------------- lock suite

/// Throughput of one shared `R` lock under contention: `n_ulps` decoupled
/// ULPs over `n_scheds` scheduler KCs, each performing `iters_each`
/// lock/increment/unlock operations on a single [`UlpLock<u64, R>`].
/// Returns ns per acquire (wall time over total acquisitions). Run with
/// `n_ulps <= n_scheds` for the undersubscribed regime and
/// `n_ulps > n_scheds` for oversubscription, where a spinning waiter can
/// occupy the scheduler the holder needs — the regime the cooperative
/// `stall()` paths in the suite exist for.
pub fn contended_lock_ns<R: RawUlpLock + 'static>(
    n_scheds: usize,
    n_ulps: usize,
    iters_each: usize,
) -> f64 {
    let rt = Runtime::builder()
        .schedulers(n_scheds)
        .idle_policy(IdlePolicy::Blocking)
        .build();
    let lock = Arc::new(UlpLock::<u64, R>::new(0));
    let go = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..n_ulps)
        .map(|i| {
            let l = lock.clone();
            let g = go.clone();
            rt.spawn(&format!("lock-{}-{i}", R::NAME), move || {
                decouple().unwrap();
                while !g.load(Ordering::Acquire) {
                    yield_now();
                }
                for _ in 0..iters_each {
                    *l.lock() += 1;
                }
                0
            })
        })
        .collect();
    let t = Instant::now();
    go.store(true, Ordering::Release);
    for h in handles {
        h.wait();
    }
    let total_ns = t.elapsed().as_nanos() as f64;
    let total_ops = (n_ulps * iters_each) as u64;
    assert_eq!(*lock.lock(), total_ops, "lock {} lost updates", R::NAME);
    drop(rt);
    total_ns / total_ops as f64
}

// ------------------------------------------------------- latency percentiles

/// Distribution of the yield-to-yield interval on a scheduler KC, from the
/// runtime's own latency histograms (ISSUE 2): the same two-ULP ping-pong
/// as [`ulp_yield_ns_sched`], but run with tracing enabled so every switch
/// lands a histogram sample, then folded into percentiles. Runs in a
/// *separate* runtime from the mean measurements so the ring writes never
/// pollute the min-of-runs numbers.
pub fn yield_interval_summary(
    policy: IdlePolicy,
    sched: SchedPolicy,
    iters: usize,
) -> ulp_core::HistSummary {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(policy)
        .sched_policy(sched)
        .build();
    rt.trace_enable();
    let stop = Arc::new(AtomicBool::new(false));
    let s2 = stop.clone();
    let partner = rt.spawn("yield-hist-peer", move || {
        decouple().unwrap();
        while !s2.load(Ordering::Acquire) {
            yield_now();
        }
        0
    });
    let s3 = stop.clone();
    let driver = rt.spawn("yield-hist-meas", move || {
        decouple().unwrap();
        for _ in 0..iters {
            yield_now();
        }
        s3.store(true, Ordering::Release);
        0
    });
    driver.wait();
    partner.wait();
    rt.trace_disable();
    rt.latency_snapshot().yield_interval.summary()
}

/// Distributions of the couple-path spans (ISSUE 2): repeated bare
/// couple()+decouple() round trips with tracing on, folded into
/// (couple-request→resume, enqueue→dispatch) percentile summaries.
pub fn couple_latency_summaries(
    policy: IdlePolicy,
    iters: usize,
) -> (ulp_core::HistSummary, ulp_core::HistSummary) {
    let rt = Runtime::builder().schedulers(1).idle_policy(policy).build();
    rt.trace_enable();
    rt.spawn("couple-hist", move || {
        decouple().unwrap();
        for _ in 0..iters {
            coupled_scope(|| ()).unwrap();
        }
        0
    })
    .wait();
    rt.trace_disable();
    let lat = rt.latency_snapshot();
    (lat.couple_resume.summary(), lat.queue_delay.summary())
}

/// Distribution of the kernel-side `getpid` enter→exit span: a coupled
/// getpid loop with tracing on, folded from the runtime's per-syscall
/// latency histograms — the same numbers the live metrics endpoint
/// exports as `ulp_syscall_latency_ns{call="getpid"}`. A coupled getpid
/// is the cheapest dispatch the simulated kernel has, so this row is the
/// floor of the syscall-span instrumentation overhead.
pub fn syscall_getpid_summary(iters: usize) -> ulp_core::HistSummary {
    let rt = Runtime::builder().schedulers(1).build();
    rt.trace_enable();
    rt.spawn("getpid-hist", move || {
        for _ in 0..iters {
            sys::getpid().unwrap();
        }
        0
    })
    .wait();
    rt.trace_disable();
    rt.syscall_snapshot()
        .get("getpid")
        .map(|d| d.summary())
        .unwrap_or_default()
}

/// Aggregate context-switch throughput under over-subscription: `n_blts`
/// yield-looping ULPs over `n_sched` scheduler KCs (switches per second).
pub fn oversub_switches_per_sec(
    n_sched: usize,
    sched: SchedPolicy,
    n_blts: usize,
    yields_each: usize,
) -> f64 {
    let rt = Runtime::builder()
        .schedulers(n_sched)
        .idle_policy(IdlePolicy::Blocking)
        .sched_policy(sched)
        .build();
    let go = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..n_blts)
        .map(|i| {
            let g = go.clone();
            rt.spawn(&format!("oversub{i}"), move || {
                decouple().unwrap();
                while !g.load(Ordering::Acquire) {
                    yield_now();
                }
                for _ in 0..yields_each {
                    yield_now();
                }
                0
            })
        })
        .collect();
    let t = Instant::now();
    go.store(true, Ordering::Release);
    for h in handles {
        h.wait();
    }
    let secs = t.elapsed().as_secs_f64();
    (n_blts * yields_each) as f64 / secs
}

// ------------------------------------------------- Pooled-ULP scale rows

/// Current `VmRSS` of this process in MiB, from `/proc/self/status` (0.0
/// when the host exposes no procfs — the rows then read as unmeasured).
pub fn self_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            if let Some(kib) = rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<f64>().ok())
            {
                return kib / 1024.0;
            }
        }
    }
    0.0
}

/// One high-cardinality pooled-churn measurement: `n` pooled ULPs spawned,
/// run and reaped in `wave`-sized waves over `pool_kcs` pool kernel
/// contexts. The interesting numbers are the full-lifecycle throughput
/// (spawn → dispatch → couple → terminate → reap) and the peak resident
/// set — with the stack free-list recycling slab slots and `madvise`ing
/// them away on release, RSS must track the wave size, not `n`.
#[derive(Debug, Clone, Copy)]
pub struct PooledChurn {
    /// ULPs churned through the runtime.
    pub ulps: usize,
    /// Full spawn→exit→reap lifecycles per second.
    pub spawn_per_sec: f64,
    /// Peak `VmRSS` sampled across the run, MiB.
    pub peak_rss_mib: f64,
    /// Stack free-list high-water mark (stacks outstanding at once).
    pub stack_peak: usize,
    /// Acquisitions served by recycling a previously-released stack.
    pub stack_recycled: usize,
}

/// Churn `n` short-lived pooled ULPs through the runtime in waves of
/// `wave`, reaping each wave before the next starts.
pub fn pooled_churn(n: usize, wave: usize, pool_kcs: usize) -> PooledChurn {
    let rt = Runtime::builder()
        .schedulers(2)
        .pool_kcs(pool_kcs)
        .idle_policy(IdlePolicy::Blocking)
        .build();
    let mut peak_rss = self_rss_mib();
    let t0 = Instant::now();
    let mut spawned = 0usize;
    while spawned < n {
        let count = wave.min(n - spawned);
        let handles: Vec<_> = (0..count)
            .map(|_| rt.spawn_pooled("churn", || 0).expect("pooled spawn"))
            .collect();
        for h in &handles {
            h.wait();
        }
        spawned += count;
        peak_rss = peak_rss.max(self_rss_mib());
    }
    let secs = t0.elapsed().as_secs_f64();
    PooledChurn {
        ulps: n,
        spawn_per_sec: n as f64 / secs,
        peak_rss_mib: peak_rss,
        stack_peak: rt.stack_pool().peak_outstanding(),
        stack_recycled: rt.stack_pool().recycled(),
    }
}

/// Steady-state scheduling throughput with a high-cardinality runnable
/// set: every ULP live and yielding at once, so the run queues (not the
/// slot-handoff fast path) carry the load.
#[derive(Debug, Clone, Copy)]
pub struct PooledStorm {
    /// Simultaneously-runnable pooled ULPs.
    pub ulps: usize,
    /// Aggregate scheduler switches (yields + dispatches) per second.
    pub switches_per_sec: f64,
    /// Peak `VmRSS` sampled across the run, MiB.
    pub peak_rss_mib: f64,
}

/// `n` pooled ULPs all alive at once, each yielding `yields_each` times;
/// throughput is the runtime's own switch-counter delta over the wall
/// clock from first spawn to last reap (every counted switch actually
/// happened — ULPs also yield while the spawn loop is still filling the
/// queues, and those switches are part of the measured work).
pub fn pooled_yield_storm(n: usize, yields_each: usize, pool_kcs: usize) -> PooledStorm {
    let rt = Runtime::builder()
        .schedulers(2)
        .pool_kcs(pool_kcs)
        .idle_policy(IdlePolicy::Blocking)
        .build();
    let before = rt.stats().snapshot();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|_| {
            rt.spawn_pooled("storm", move || {
                for _ in 0..yields_each {
                    yield_now();
                }
                0
            })
            .expect("pooled spawn")
        })
        .collect();
    let mid_rss = self_rss_mib();
    for h in &handles {
        h.wait();
    }
    let secs = t0.elapsed().as_secs_f64();
    let after = rt.stats().snapshot();
    let switches =
        (after.yields + after.scheduler_dispatches) - (before.yields + before.scheduler_dispatches);
    PooledStorm {
        ulps: n,
        switches_per_sec: switches as f64 / secs,
        peak_rss_mib: mid_rss.max(self_rss_mib()),
    }
}

// ------------------------------------------------------------ Figs. 7 & 8

/// The five series of Figure 7 (and the I/O side of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwcVariant {
    /// Synchronous `open`-`write`-`close` on a KLT — the slowdown baseline.
    Plain,
    /// The whole sequence enclosed in `couple()`/`decouple()` from a
    /// decoupled ULP (system-call consistency preserved, §VI-D).
    Ulp(IdlePolicy),
    /// glibc-style AIO: only the write is asynchronous; completion polled
    /// with `aio_error`/`aio_return` — "suitable for a ULT to use".
    AioReturn,
    /// Same, but completion awaited with the blocking `aio_suspend`.
    AioSuspend,
}

impl OwcVariant {
    /// Row label used in the Fig. 7 table and CSVs.
    pub fn label(&self) -> &'static str {
        match self {
            OwcVariant::Plain => "plain",
            OwcVariant::Ulp(IdlePolicy::BusyWait) => "ULP-BUSYWAIT",
            OwcVariant::Ulp(IdlePolicy::Blocking) => "ULP-BLOCKING",
            OwcVariant::Ulp(IdlePolicy::Adaptive) => "ULP-ADAPTIVE",
            OwcVariant::AioReturn => "AIO-return",
            OwcVariant::AioSuspend => "AIO-suspend",
        }
    }

    fn idle_policy(&self) -> IdlePolicy {
        match self {
            OwcVariant::Ulp(p) => *p,
            _ => IdlePolicy::Blocking,
        }
    }
}

fn owc_runtime(variant: OwcVariant, profile: ArchProfile, io: IoModel) -> Runtime {
    let rt = Runtime::builder()
        .schedulers(1)
        .idle_policy(variant.idle_policy())
        .profile(profile)
        .build();
    rt.kernel().tmpfs().set_io_model(io);
    rt
}

/// One open-write-close operation under `variant`. Assumes the caller runs
/// inside a BLT (decoupled for the ULP variants).
fn owc_once(variant: OwcVariant, buf: &Arc<Vec<u8>>) {
    let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
    match variant {
        OwcVariant::Plain => {
            let fd = sys::open("/bench.dat", flags).unwrap();
            sys::write(fd, buf).unwrap();
            sys::close(fd).unwrap();
        }
        OwcVariant::Ulp(_) => {
            // "the whole sequence must be done by a KLT otherwise the
            // system-call consistency is broken" (§VI-D).
            coupled_scope(|| {
                let fd = sys::open("/bench.dat", flags).unwrap();
                sys::write(fd, buf).unwrap();
                sys::close(fd).unwrap();
            })
            .unwrap();
        }
        OwcVariant::AioReturn => {
            let fd = sys::open("/bench.dat", flags).unwrap();
            let cb = sys::aio_write(fd, 0, buf.clone()).unwrap();
            // The ULT-style completion loop: yield + poll aio_error.
            while cb.error() == Some(ulp_kernel::Errno::EINPROGRESS) {
                if !yield_now() {
                    std::hint::spin_loop();
                }
            }
            cb.aio_return().unwrap();
            sys::close(fd).unwrap();
        }
        OwcVariant::AioSuspend => {
            let fd = sys::open("/bench.dat", flags).unwrap();
            let cb = sys::aio_write(fd, 0, buf.clone()).unwrap();
            cb.suspend();
            cb.aio_return().unwrap();
            sys::close(fd).unwrap();
        }
    }
}

/// Per-operation time of open-write-close under `variant` for a `size`-byte
/// buffer (min-of-runs protocol), ns.
pub fn owc_ns(
    variant: OwcVariant,
    size: usize,
    profile: ArchProfile,
    io: IoModel,
    iters: usize,
) -> f64 {
    let rt = owc_runtime(variant, profile, io);
    let result = Arc::new(Mutex::new(f64::INFINITY));
    let r2 = result.clone();
    rt.spawn("owc", move || {
        if matches!(variant, OwcVariant::Ulp(_)) {
            decouple().unwrap();
        }
        let buf = Arc::new(vec![0xA5u8; size]);
        *r2.lock() = crate::measure_min(iters, || owc_once(variant, &buf));
        0
    })
    .wait();
    let v = *result.lock();
    v
}

// ------------------------------------------------------------------ compute

/// A compute chunk: enough floating-point work to take roughly `CHUNK_NS`.
/// Returned value prevents the optimizer from deleting the work.
#[inline(never)]
pub fn compute_chunk(iters: u64) -> f64 {
    let mut x = 1.000_000_1f64;
    for _ in 0..iters {
        x = x * 1.000_000_3 + 1e-12;
        x = std::hint::black_box(x);
    }
    x
}

/// One overlapped-compute slice: the chunk's flops plus a cooperative OS
/// yield. The yield stands in for the second core of the paper's testbed:
/// on a single-CPU host the fair scheduler will not preempt a pure compute
/// loop within a slice, so *no* async mechanism could make progress. Every
/// variant (AIO and ULP alike) computes through this same function, so the
/// comparison stays fair.
#[inline]
pub fn compute_slice(iters: u64) {
    std::hint::black_box(compute_chunk(iters));
    std::thread::yield_now();
}

/// Calibrate the iteration count whose `compute_chunk` takes ~`target_ns`.
pub fn calibrate_compute(target_ns: f64) -> u64 {
    let probe: u64 = 100_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        std::hint::black_box(compute_chunk(probe));
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    let per_iter = best / probe as f64;
    ((target_ns / per_iter) as u64).max(1)
}

/// Result of one overlap measurement (Fig. 8, IMB method).
#[derive(Debug, Clone, Copy)]
pub struct OverlapResult {
    /// Wall time of the I/O phase alone.
    pub pure_io_ns: f64,
    /// Wall time of the compute phase alone.
    pub pure_cpu_ns: f64,
    /// Wall time with both phases overlapped.
    pub overlapped_ns: f64,
    /// Percentage in [0, 100].
    pub ratio: f64,
}

fn imb_ratio(pure_io: f64, pure_cpu: f64, ovl: f64) -> f64 {
    let denom = pure_io.min(pure_cpu);
    if denom <= 0.0 {
        return 0.0;
    }
    (100.0 * (pure_io + pure_cpu - ovl) / denom).clamp(0.0, 100.0)
}

/// Measure the compute/I-O overlap ratio of `variant` for `size`-byte
/// writes, "calculated in the way used in the Intel MPI benchmarks" (§VI-D):
/// `overlap = (t_io + t_cpu − t_ovl) / min(t_io, t_cpu)`, with the compute
/// workload calibrated to the pure-I/O time.
pub fn overlap(
    variant: OwcVariant,
    size: usize,
    profile: ArchProfile,
    io: IoModel,
) -> OverlapResult {
    const OPS: usize = 8;
    let rt = owc_runtime(variant, profile, io);

    // --- pure I/O: OPS back-to-back operations on a coupled BLT.
    let pure_io_cell = Arc::new(Mutex::new(f64::INFINITY));
    let c2 = pure_io_cell.clone();
    rt.spawn("pure-io", move || {
        let buf = Arc::new(vec![0x5Au8; size]);
        let mut best = f64::INFINITY;
        for _ in 0..crate::RUNS {
            owc_once(OwcVariant::Plain, &buf); // warm-up
            let t = Instant::now();
            for _ in 0..OPS {
                owc_once(OwcVariant::Plain, &buf);
            }
            best = best.min(t.elapsed().as_nanos() as f64 / OPS as f64);
        }
        *c2.lock() = best;
        0
    })
    .wait();
    let pure_io = *pure_io_cell.lock();

    // --- compute calibrated to the pure-I/O time, in ~32 slices so the
    // AIO-return variant has polling points.
    let slices = 32u64;
    let slice_iters = calibrate_compute(pure_io / slices as f64);
    let mut pure_cpu = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..slices {
            compute_slice(slice_iters);
        }
        pure_cpu = pure_cpu.min(t.elapsed().as_nanos() as f64);
    }

    // --- overlapped run (minimum of three trials, like everything else).
    let one_overlapped_trial = |variant: OwcVariant| -> f64 {
        match variant {
            OwcVariant::Plain => {
                // No async mechanism: sequential I/O then compute.
                let cell = Arc::new(Mutex::new(0f64));
                let c2 = cell.clone();
                rt.spawn("ovl-plain", move || {
                    let buf = Arc::new(vec![1u8; size]);
                    let t = Instant::now();
                    for _ in 0..OPS {
                        owc_once(OwcVariant::Plain, &buf);
                        for _ in 0..slices {
                            compute_slice(slice_iters);
                        }
                    }
                    *c2.lock() = t.elapsed().as_nanos() as f64 / OPS as f64;
                    0
                })
                .wait();
                let v = *cell.lock();
                v
            }
            OwcVariant::Ulp(_) => {
                // Two ULPs: one does the coupled I/O (its own KC blocks), the
                // other computes on the scheduler meanwhile. Completion is
                // timestamped inside each task so thread teardown/join costs do
                // not pollute the overlapped time (the AIO arm also measures
                // inside its task).
                let go = Arc::new(AtomicBool::new(false));
                let ends: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
                let g2 = go.clone();
                let e2 = ends.clone();
                let io_task = rt.spawn("ovl-io", move || {
                    decouple().unwrap();
                    while !g2.load(Ordering::Acquire) {
                        yield_now();
                    }
                    let buf = Arc::new(vec![2u8; size]);
                    // One couple()/decouple() pair around the whole series —
                    // the paper's "enclose a series of system-calls" idiom
                    // (§VII); the original KC executes all OPS operations while
                    // the compute ULP keeps the scheduler busy.
                    coupled_scope(|| {
                        let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
                        for _ in 0..OPS {
                            let fd = sys::open("/bench.dat", flags).unwrap();
                            sys::write(fd, &buf).unwrap();
                            sys::close(fd).unwrap();
                        }
                    })
                    .unwrap();
                    e2.lock().push(Instant::now());
                    0
                });
                let g3 = go.clone();
                let e3 = ends.clone();
                let cpu_task = rt.spawn("ovl-cpu", move || {
                    decouple().unwrap();
                    while !g3.load(Ordering::Acquire) {
                        yield_now();
                    }
                    for _ in 0..(OPS as u64 * slices) {
                        compute_slice(slice_iters);
                    }
                    e3.lock().push(Instant::now());
                    0
                });
                let t = Instant::now();
                go.store(true, Ordering::Release);
                io_task.wait();
                cpu_task.wait();
                let last_end = ends
                    .lock()
                    .iter()
                    .max()
                    .copied()
                    .unwrap_or_else(Instant::now);
                last_end.duration_since(t).as_nanos() as f64 / OPS as f64
            }
            OwcVariant::AioReturn | OwcVariant::AioSuspend => {
                let cell = Arc::new(Mutex::new(0f64));
                let c2 = cell.clone();
                rt.spawn("ovl-aio", move || {
                    let buf = Arc::new(vec![3u8; size]);
                    let flags = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
                    let t = Instant::now();
                    for _ in 0..OPS {
                        let fd = sys::open("/bench.dat", flags).unwrap();
                        let cb = sys::aio_write(fd, 0, buf.clone()).unwrap();
                        // Compute while the helper writes.
                        for _ in 0..slices {
                            compute_slice(slice_iters);
                            if variant == OwcVariant::AioReturn {
                                // Poll between slices, as a ULT would.
                                let _ = cb.error();
                            }
                        }
                        match variant {
                            OwcVariant::AioReturn => {
                                while cb.error() == Some(ulp_kernel::Errno::EINPROGRESS) {
                                    std::hint::spin_loop();
                                }
                            }
                            _ => cb.suspend(),
                        }
                        cb.aio_return().unwrap();
                        sys::close(fd).unwrap();
                    }
                    *c2.lock() = t.elapsed().as_nanos() as f64 / OPS as f64;
                    0
                })
                .wait();
                let v = *cell.lock();
                v
            }
        }
    };
    let mut ovl = f64::INFINITY;
    for _ in 0..3 {
        ovl = ovl.min(one_overlapped_trial(variant));
    }

    OverlapResult {
        pure_io_ns: pure_io,
        pure_cpu_ns: pure_cpu,
        overlapped_ns: ovl,
        ratio: imb_ratio(pure_io, pure_cpu, ovl),
    }
}

// ---------------------------------------------------------------- wake edges

/// Run `pairs` socket ping-pong ULP pairs for `rounds` round trips each
/// with tracing on, and fold the wake-to-run distribution across every
/// site. Each pong side sits in blocking reads, so every round trip blocks
/// two reads that a peer write then ends — a run that records no
/// `sock_read` wake edges means the attribution layer fell off, however
/// fast it ran. This is what the perf-smoke structural gate reads.
pub fn wake_to_run_snapshot(pairs: usize, rounds: usize) -> ulp_core::WakeSnapshot {
    let rt = Runtime::builder()
        .schedulers(2)
        .idle_policy(IdlePolicy::Blocking)
        .build();
    rt.trace_enable();
    let mut handles = Vec::new();
    for p in 0..pairs {
        let listener = Arc::new(ulp_core::Listener::new());
        let l2 = listener.clone();
        handles.push(rt.spawn(&format!("wake-pong{p}"), move || {
            decouple().unwrap();
            coupled_scope(|| {
                let lfd = sys::listen(&l2).unwrap();
                let conn = sys::accept(lfd).unwrap();
                let mut buf = [0u8; 1];
                for _ in 0..rounds {
                    assert_eq!(sys::read(conn, &mut buf).unwrap(), 1);
                    assert_eq!(sys::write(conn, &buf).unwrap(), 1);
                }
                sys::close(conn).unwrap();
                sys::close(lfd).unwrap();
            })
            .unwrap();
            0
        }));
        handles.push(rt.spawn(&format!("wake-ping{p}"), move || {
            decouple().unwrap();
            coupled_scope(|| {
                let fd = sys::connect(&listener).unwrap();
                let mut buf = [0u8; 1];
                for _ in 0..rounds {
                    assert_eq!(sys::write(fd, b"x").unwrap(), 1);
                    assert_eq!(sys::read(fd, &mut buf).unwrap(), 1);
                }
                sys::close(fd).unwrap();
            })
            .unwrap();
            0
        }));
    }
    for h in handles {
        assert_eq!(h.wait(), 0);
    }
    rt.latency_snapshot().wake
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_switch_is_fast() {
        let ns = ctx_switch_ns(10_000);
        // Tens of ns expected; allow generous CI headroom.
        assert!(ns > 0.0 && ns < 5_000.0, "ctx switch {ns} ns");
    }

    #[test]
    fn tls_profiles_order() {
        let native = tls_load_ns(ArchProfile::Native, 2_000);
        let wallaby = tls_load_ns(ArchProfile::Wallaby, 2_000);
        assert!(
            wallaby > native,
            "wallaby ({wallaby}) must exceed native ({native})"
        );
    }

    #[test]
    fn calibration_roughly_hits_target() {
        let iters = calibrate_compute(200_000.0); // 200 µs
        let t = Instant::now();
        std::hint::black_box(compute_chunk(iters));
        let e = t.elapsed().as_nanos() as f64;
        assert!(e > 20_000.0 && e < 2_000_000.0, "calibrated chunk {e} ns");
    }

    #[test]
    fn imb_formula() {
        // Perfect overlap: t_ovl == max(io, cpu) -> 100%.
        assert_eq!(imb_ratio(100.0, 100.0, 100.0), 100.0);
        // No overlap: t_ovl == io + cpu -> 0%.
        assert_eq!(imb_ratio(100.0, 100.0, 200.0), 0.0);
        // Halfway.
        let r = imb_ratio(100.0, 100.0, 150.0);
        assert!((r - 50.0).abs() < 1e-9);
        // Clamped.
        assert_eq!(imb_ratio(100.0, 100.0, 500.0), 0.0);
        assert_eq!(imb_ratio(100.0, 100.0, 50.0), 100.0);
    }

    #[test]
    fn owc_plain_scales_with_size() {
        let small = owc_ns(
            OwcVariant::Plain,
            256,
            ArchProfile::Native,
            IoModel::MEMORY_BANDWIDTH,
            50,
        );
        let large = owc_ns(
            OwcVariant::Plain,
            1 << 20,
            ArchProfile::Native,
            IoModel::MEMORY_BANDWIDTH,
            20,
        );
        assert!(
            large > small * 5.0,
            "1MiB ({large}) should dwarf 256B ({small})"
        );
    }
}
