//! Table rendering and CSV output for the reproduction binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned-text table matching the paper's presentation.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; arity must match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "| {:w$} ", c, w = widths[i]);
            }
            s.push('|');
            s
        };
        let header = line(&self.header, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Write the table as CSV next to the human-readable output.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of data rows (excluding the header).
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Directory where the repro binaries drop their CSVs.
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(
        std::env::var("ULP_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| longer-name | 22    |") || s.contains("| longer-name | 22"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("ulp-bench-test");
        let path = dir.join("t.csv");
        let mut t = Table::new("csv", &["k", "v"]);
        t.row(vec!["x".into(), "1".into()]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "k,v\nx,1\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
