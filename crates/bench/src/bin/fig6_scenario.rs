//! The paper's Fig. 6 usage scenario, executed end to end.
//!
//! CPU cores are split into a program group and a system-call group
//! (eq. 1: NC = NCprog + NCsyscall); NB = NCprog × (O + 1) worker BLTs
//! (eq. 2) are created, decoupled, and scheduled by NCprog scheduler KCs
//! while their original KCs — parked on the syscall cores — execute the
//! enclosed system-call bursts. The run prints the topology, the work
//! completed, and the runtime counters that characterize it.
//!
//! Run: `cargo run --release -p ulp-bench --bin fig6_scenario [O]`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ulp_core::{coupled_scope, decouple, sys, yield_now, IdlePolicy, Runtime, Topology};
use ulp_kernel::OpenFlags;

fn main() {
    let oversub: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Split the host: at least one program core, the rest for syscalls.
    let nc_prog = (host_cpus / 2).max(1);
    let topo = Topology {
        nc_prog,
        nc_syscall: (host_cpus - nc_prog).max(1),
        oversubscription: oversub,
    };
    println!(
        "Fig. 6 topology: NC={} (NCprog={}, NCsyscall={}), O={} -> NB={} worker BLTs",
        topo.total_cores(),
        topo.nc_prog,
        topo.nc_syscall,
        topo.oversubscription,
        topo.n_blts()
    );

    let syscall_cores: Vec<usize> = (topo.nc_prog..topo.total_cores()).collect();
    let rt = Runtime::builder()
        .schedulers(topo.nc_prog)
        .idle_policy(IdlePolicy::Adaptive)
        .pin_schedulers(true)
        .syscall_cores(syscall_cores)
        .build();

    const OPS_PER_BLT: usize = 200;
    let completed = Arc::new(AtomicU64::new(0));
    let t = Instant::now();
    let handles: Vec<_> = (0..topo.n_blts())
        .map(|i| {
            let completed = completed.clone();
            rt.spawn(&format!("worker-{i}"), move || {
                decouple().unwrap();
                for k in 0..OPS_PER_BLT {
                    // Compute phase on the program cores...
                    let mut x = 1.0f64;
                    for _ in 0..2_000 {
                        x = std::hint::black_box(x * 1.000_1 + 1e-9);
                    }
                    // ...system-call burst on our own (syscall-core) KC.
                    coupled_scope(|| {
                        let fd = sys::open(
                            &format!("/w{i}.dat"),
                            OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC,
                        )
                        .unwrap();
                        sys::write(fd, &(k as u64).to_le_bytes()).unwrap();
                        sys::close(fd).unwrap();
                    })
                    .unwrap();
                    completed.fetch_add(1, Ordering::Relaxed);
                    if k % 8 == 0 {
                        yield_now();
                    }
                }
                0
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.wait(), 0);
    }
    let elapsed = t.elapsed();
    let total_ops = completed.load(Ordering::Relaxed);
    let stats = rt.stats().snapshot();
    println!(
        "\ncompleted {total_ops} compute+syscall cycles in {:.1} ms ({:.1} us/cycle)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / total_ops as f64
    );
    println!("runtime counters:");
    println!("  context switches    : {}", stats.context_switches);
    println!(
        "  couples / decouples : {} / {}",
        stats.couples, stats.decouples
    );
    println!("  scheduler dispatches: {}", stats.scheduler_dispatches);
    println!("  TLS loads           : {}", stats.tls_loads);
    println!("  KC blocks (adaptive): {}", stats.kc_blocks);
    println!("  consistency issues  : {}", rt.violations().len());
    assert_eq!(total_ops as usize, topo.n_blts() * OPS_PER_BLT);
    assert!(rt.violations().is_empty(), "all syscalls were enclosed");
}
