//! Regenerate every table and figure of the paper's evaluation in one run.
//! Set ULP_BENCH_SCALE=10 for paper-grade iteration counts.
use ulp_kernel::ArchProfile;
fn main() {
    println!(
        "ULP-RS paper reproduction — all artifacts (scale={})",
        ulp_bench::repro::scale()
    );
    ulp_bench::repro::run_and_save("table3", ulp_bench::repro::table3());
    ulp_bench::repro::run_and_save("table4", ulp_bench::repro::table4());
    ulp_bench::repro::run_and_save("table5", ulp_bench::repro::table5());
    for p in [
        ArchProfile::Native,
        ArchProfile::Wallaby,
        ArchProfile::Albireo,
    ] {
        let s = match p {
            ArchProfile::Native => "native",
            ArchProfile::Wallaby => "wallaby",
            ArchProfile::Albireo => "albireo",
        };
        ulp_bench::repro::run_and_save(&format!("fig7-{s}"), ulp_bench::repro::fig7(p));
        ulp_bench::repro::run_and_save(&format!("fig8-{s}"), ulp_bench::repro::fig8(p));
    }
    ulp_bench::bench1::run_and_save();
    ulp_bench::bench2::run_and_save();
    ulp_bench::bench3::run_and_save();
    println!(
        "\nDone. CSVs in {}",
        ulp_bench::report::results_dir().display()
    );
}
