//! Reproduce the paper's Figure 8 (overlap ratios, IMB method).
use ulp_kernel::ArchProfile;
fn main() {
    for p in [
        ArchProfile::Native,
        ArchProfile::Wallaby,
        ArchProfile::Albireo,
    ] {
        ulp_bench::repro::run_and_save(&format!("fig8-{}", short(p)), ulp_bench::repro::fig8(p));
    }
}
fn short(p: ArchProfile) -> &'static str {
    match p {
        ArchProfile::Native => "native",
        ArchProfile::Wallaby => "wallaby",
        ArchProfile::Albireo => "albireo",
    }
}
