//! `difffolded` — differential flame profiles for before/after comparison.
//!
//! The benchmarking loop this serves: capture a collapsed-stack profile of
//! a baseline run, change something (scheduler count, idle policy, a
//! patch), capture again, and render *where the wall-clock moved*. Inputs
//! are any two folded profiles the runtime emits — `ULP_PROFILE=<path>`
//! shutdown dumps, `GET /profile` scrapes, or `/proc/ulp/metrics`-style
//! in-simulation reads of `/proc/ulp/profile`.
//!
//! Output is the standard differential folded format, one line per stack
//! seen in either input — `frames before_ns after_ns` — which is exactly
//! what `flamegraph.pl --negate` (or inferno's `--negate`) consumes to
//! paint regressions red and improvements blue:
//!
//! ```sh
//! ULP_PROFILE=/tmp/before.folded cargo run --release --example pingpong
//! # ...apply the change...
//! ULP_PROFILE=/tmp/after.folded cargo run --release --example pingpong
//! cargo run --release -p ulp-bench --bin difffolded -- \
//!     /tmp/before.folded /tmp/after.folded > /tmp/diff.folded
//! flamegraph.pl --negate /tmp/diff.folded > diff.svg
//! ```
//!
//! The merge itself is [`ulp_core::diff_folded`]: stacks absent on one
//! side get an explicit `0`, so a state that appears or vanishes entirely
//! still renders at full width. See OBSERVABILITY.md, Recipe 3.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: difffolded BEFORE.folded AFTER.folded > diff.folded\n\
         \n\
         BEFORE/AFTER: collapsed-stack profiles (ULP_PROFILE dumps,\n\
         /profile scrapes, or /proc/ulp/profile reads)\n\
         output: `frames before_ns after_ns` per line, for\n\
         flamegraph.pl --negate / inferno-flamegraph --negate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 2 || args.iter().any(|a| a.starts_with('-')) {
        return usage();
    }
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let (before, after) = match (read(&args[0]), read(&args[1])) {
        (Ok(b), Ok(a)) => (b, a),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("difffolded: {e}");
            return ExitCode::FAILURE;
        }
    };
    match ulp_core::diff_folded(&before, &after) {
        Ok(diff) => {
            print!("{diff}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("difffolded: {e}");
            ExitCode::FAILURE
        }
    }
}
