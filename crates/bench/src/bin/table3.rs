//! Reproduce the paper's Table3 (see crate docs for the protocol).
fn main() {
    ulp_bench::repro::run_and_save("table3", ulp_bench::repro::table3());
}
