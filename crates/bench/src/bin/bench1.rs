//! Emit BENCH_1.json (hot-path switch metrics with before/after deltas).
//! `--print-raw` prints the measured values as Rust consts, for refreshing
//! `bench1::baseline` at a baseline commit.
fn main() {
    if std::env::args().any(|a| a == "--print-raw") {
        let b = ulp_bench::bench1::measure();
        println!("pub const YIELD_FIFO_NS: f64 = {:.1};", b.yield_fifo_ns);
        println!("pub const YIELD_WS_NS: f64 = {:.1};", b.yield_ws_ns);
        println!(
            "pub const COUPLE_RTT_BUSYWAIT_NS: f64 = {:.1};",
            b.couple_rtt_busywait_ns
        );
        println!(
            "pub const COUPLE_RTT_BLOCKING_NS: f64 = {:.1};",
            b.couple_rtt_blocking_ns
        );
        println!(
            "pub const OVERSUB4_SWITCHES_PER_SEC: f64 = {:.1};",
            b.oversub4_switches_per_sec
        );
        return;
    }
    ulp_bench::bench1::run_and_save();
}
