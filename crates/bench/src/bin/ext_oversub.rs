//! Extension experiment (beyond the paper's tables): over-subscribed MPI
//! ranks — ULP (decoupled, cooperative) vs KLT (one OS thread per rank) —
//! across rank counts, on a fixed scheduler budget. This quantifies the
//! §III motivation the paper leaves qualitative: "context switching
//! overhead can be problematic when using oversubscribed KLTs or
//! processes".
//!
//! Run: `cargo run --release -p ulp-bench --bin ext_oversub`

use std::time::Instant;
use ulp_bench::report::Table;
use ulp_mpi::{NetModel, ReduceOp, UlpWorld};

const STEPS: usize = 40;

fn run_world(ranks: usize, decoupled: bool) -> f64 {
    let builder = UlpWorld::builder()
        .ranks(ranks)
        .schedulers(1)
        .net(NetModel::CLUSTER);
    let world = if decoupled {
        builder.build()
    } else {
        builder.coupled_ranks().build()
    };
    let t = Instant::now();
    let codes = world.run("ring", |ctx| {
        let n = ctx.size();
        let me = ctx.rank();
        for step in 0..STEPS {
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            ctx.send(next, step as i32, &[me as u8]);
            // A small compute slice per step, as a real stencil would have.
            let mut x = 1.0f64;
            for _ in 0..5_000 {
                x = std::hint::black_box(x * 1.000_1 + 1e-9);
            }
            let got = ctx.recv(prev as i32, step as i32);
            debug_assert_eq!(got.data[0] as usize, prev);
        }
        let s = ctx.allreduce(ReduceOp::Sum, &[1.0]);
        (s[0] as usize == n) as i32 - 1
    });
    assert!(codes.iter().all(|&c| c == 0), "ring failed");
    t.elapsed().as_micros() as f64
}

fn main() {
    let mut table = Table::new(
        "Extension: over-subscribed ring exchange, 1 scheduler core, 2us network",
        &["ranks", "ULP[us]", "KLT[us]", "KLT/ULP"],
    );
    for &ranks in &[2usize, 4, 8, 16, 32, 48] {
        // Min of three trials each, interleaved to share thermal noise.
        let mut ulp = f64::INFINITY;
        let mut klt = f64::INFINITY;
        for _ in 0..3 {
            ulp = ulp.min(run_world(ranks, true));
            klt = klt.min(run_world(ranks, false));
        }
        table.row(vec![
            ranks.to_string(),
            format!("{ulp:.0}"),
            format!("{klt:.0}"),
            format!("{:.2}", klt / ulp),
        ]);
    }
    ulp_bench::repro::run_and_save("ext_oversub", table);
}
