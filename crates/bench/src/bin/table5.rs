//! Reproduce the paper's Table5 (see crate docs for the protocol).
fn main() {
    ulp_bench::repro::run_and_save("table5", ulp_bench::repro::table5());
}
