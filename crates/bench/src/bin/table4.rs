//! Reproduce the paper's Table4 (see crate docs for the protocol).
fn main() {
    ulp_bench::repro::run_and_save("table4", ulp_bench::repro::table4());
}
