//! Emit BENCH_3.json (epoll echo-server throughput over the loopback
//! sockets: requests/sec plus p50/p99 request round-trip per sweep row).
fn main() {
    ulp_bench::bench3::run_and_save();
}
