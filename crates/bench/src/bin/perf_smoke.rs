//! CI perf smoke: a low-iteration couple-RTT check against the committed
//! `results/BENCH_1.json`.
//!
//! Re-measures the bare couple()/decouple() round trip (BUSYWAIT and
//! BLOCKING) and fails — exit code 1 — if either regresses more than 25%
//! over the committed "after" figure. Also runs the direct-handoff
//! ping-pong and fails if the handoff hit rate drops to 90% or below, or
//! if the fast path stops beating the committed slow-path RTT: both are
//! structural properties of the handoff protocol, not timing noise. The
//! handoff check runs under BUSYWAIT, where the fast path's margin over
//! the slow path is widest (wake batching pulled the BLOCKING slow path
//! close enough to the handoff figure that a short run could flap).
//!
//! Iteration counts are deliberately tiny (the min-of-runs protocol keeps
//! even short runs stable on the fast paths measured here); the 25% margin
//! absorbs shared-runner jitter.

use ulp_core::IdlePolicy;
use ulp_kernel::ArchProfile;

const ITERS: usize = 400;
const MAX_REGRESSION: f64 = 1.25;

/// Pull `"after": <num>` out of the committed BENCH_1.json row named
/// `key` (hand-rolled: the build environment has no serde).
fn committed_after(json: &str, key: &str) -> Option<f64> {
    let row = json.lines().find(|l| l.contains(&format!("\"{key}\"")))?;
    let tail = row.split("\"after\": ").nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let path = ulp_bench::report::results_dir().join("BENCH_1.json");
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf-smoke: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let mut failed = false;
    let mut gate = |label: &str, key: &str, measured: f64| {
        let Some(reference) = committed_after(&json, key) else {
            eprintln!(
                "perf-smoke: FAIL {label}: no \"{key}\" row in {}",
                path.display()
            );
            failed = true;
            return;
        };
        let limit = reference * MAX_REGRESSION;
        let verdict = if measured <= limit { "ok" } else { "FAIL" };
        println!(
            "perf-smoke: {verdict} {label}: {measured:.1} ns (committed {reference:.1} ns, limit {limit:.1})"
        );
        if measured > limit {
            failed = true;
        }
    };

    gate(
        "couple RTT busywait",
        "couple_decouple_rtt_busywait",
        ulp_bench::workloads::couple_rtt_ns(IdlePolicy::BusyWait, ArchProfile::Native, ITERS),
    );
    gate(
        "couple RTT blocking",
        "couple_decouple_rtt_blocking",
        ulp_bench::workloads::couple_rtt_ns(IdlePolicy::Blocking, ArchProfile::Native, ITERS),
    );

    // Structural handoff checks: the deterministic ping-pong must hand off
    // on essentially every decouple and beat the committed slow-path RTT.
    let h =
        ulp_bench::workloads::couple_handoff_rtt(IdlePolicy::BusyWait, ArchProfile::Native, ITERS);
    println!(
        "perf-smoke: {} handoff hit rate: {:.4}",
        if h.hit_rate > 0.9 { "ok" } else { "FAIL" },
        h.hit_rate
    );
    if h.hit_rate <= 0.9 {
        failed = true;
    }
    if let Some(slow) = committed_after(&json, "couple_decouple_rtt_busywait") {
        let verdict = if h.rtt_ns < slow { "ok" } else { "FAIL" };
        println!(
            "perf-smoke: {verdict} handoff RTT: {:.1} ns (committed slow path {slow:.1} ns)",
            h.rtt_ns
        );
        if h.rtt_ns >= slow {
            failed = true;
        }
    }

    if failed {
        eprintln!("perf-smoke: couple-RTT regression gate FAILED");
        std::process::exit(1);
    }
    println!("perf-smoke: all gates passed");
}
