//! CI perf smoke: a low-iteration couple-RTT check against the committed
//! `results/BENCH_1.json`.
//!
//! Re-measures the bare couple()/decouple() round trip (BUSYWAIT and
//! BLOCKING) and fails — exit code 1 — if either regresses more than 25%
//! over the committed "after" figure. Also runs the direct-handoff
//! ping-pong and fails if the handoff hit rate drops to 90% or below, or
//! if the fast path stops beating the committed slow-path RTT: both are
//! structural properties of the handoff protocol, not timing noise. The
//! handoff check runs under BUSYWAIT, where the fast path's margin over
//! the slow path is widest (wake batching pulled the BLOCKING slow path
//! close enough to the handoff figure that a short run could flap).
//!
//! Also gates the oversubscribed-KC-pool scale path: re-churns the 100k
//! pooled-ULP row and fails if the spawn rate drops below half the
//! committed figure (throughput on shared runners jitters more than
//! latency, hence the wider margin) or if peak RSS stops being
//! wave-bounded — a broken stack free-list turns ~10 MiB into gigabytes,
//! so the RSS ceiling is structural, not a timing gate.
//!
//! Iteration counts are deliberately tiny (the min-of-runs protocol keeps
//! even short runs stable on the fast paths measured here); the 25% margin
//! absorbs shared-runner jitter.

use ulp_core::IdlePolicy;
use ulp_kernel::ArchProfile;

const ITERS: usize = 400;
const MAX_REGRESSION: f64 = 1.25;
/// Pooled ULPs for the churn gate — the committed 100k row, full size
/// (the rate is stable because the run amortizes over the whole churn).
const CHURN_ULPS: usize = 100_000;
/// Minimum fraction of the committed spawn rate the gate accepts.
const MIN_CHURN_FRACTION: f64 = 0.5;
/// Structural RSS ceiling for the churn (MiB): generous over the ~10 MiB
/// a recycling pool needs, far under the gigabytes a leak produces.
const CHURN_RSS_CEILING_MIB: f64 = 512.0;

/// Pull `"<field>": <num>` out of the committed BENCH_1.json row named
/// `key` (hand-rolled: the build environment has no serde).
fn committed_field(json: &str, key: &str, field: &str) -> Option<f64> {
    let row = json.lines().find(|l| l.contains(&format!("\"{key}\"")))?;
    let tail = row.split(&format!("\"{field}\": ")).nth(1)?;
    let num: String = tail
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn committed_after(json: &str, key: &str) -> Option<f64> {
    committed_field(json, key, "after")
}

fn main() {
    let path = ulp_bench::report::results_dir().join("BENCH_1.json");
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf-smoke: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let mut failed = false;
    let mut gate = |label: &str, key: &str, measured: f64| {
        let Some(reference) = committed_after(&json, key) else {
            eprintln!(
                "perf-smoke: FAIL {label}: no \"{key}\" row in {}",
                path.display()
            );
            failed = true;
            return;
        };
        let limit = reference * MAX_REGRESSION;
        let verdict = if measured <= limit { "ok" } else { "FAIL" };
        println!(
            "perf-smoke: {verdict} {label}: {measured:.1} ns (committed {reference:.1} ns, limit {limit:.1})"
        );
        if measured > limit {
            failed = true;
        }
    };

    gate(
        "couple RTT busywait",
        "couple_decouple_rtt_busywait",
        ulp_bench::workloads::couple_rtt_ns(IdlePolicy::BusyWait, ArchProfile::Native, ITERS),
    );
    gate(
        "couple RTT blocking",
        "couple_decouple_rtt_blocking",
        ulp_bench::workloads::couple_rtt_ns(IdlePolicy::Blocking, ArchProfile::Native, ITERS),
    );

    // Structural handoff checks: the deterministic ping-pong must hand off
    // on essentially every decouple and beat the committed slow-path RTT.
    let h =
        ulp_bench::workloads::couple_handoff_rtt(IdlePolicy::BusyWait, ArchProfile::Native, ITERS);
    println!(
        "perf-smoke: {} handoff hit rate: {:.4}",
        if h.hit_rate > 0.9 { "ok" } else { "FAIL" },
        h.hit_rate
    );
    if h.hit_rate <= 0.9 {
        failed = true;
    }
    if let Some(slow) = committed_after(&json, "couple_decouple_rtt_busywait") {
        let verdict = if h.rtt_ns < slow { "ok" } else { "FAIL" };
        println!(
            "perf-smoke: {verdict} handoff RTT: {:.1} ns (committed slow path {slow:.1} ns)",
            h.rtt_ns
        );
        if h.rtt_ns >= slow {
            failed = true;
        }
    }

    // Oversubscribed-pool scale gate: churn the committed 100k row and
    // hold the spawn rate to half the committed figure, peak RSS to a
    // structural ceiling, and the stack free-list to zero leaks.
    let churn = ulp_bench::workloads::pooled_churn(
        CHURN_ULPS,
        ulp_bench::bench1::CHURN_WAVE,
        ulp_bench::bench1::POOL_KCS,
    );
    match committed_field(&json, "pooled_churn_100k", "spawn_per_sec") {
        Some(reference) => {
            let floor = reference * MIN_CHURN_FRACTION;
            let verdict = if churn.spawn_per_sec >= floor {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "perf-smoke: {verdict} pooled churn rate: {:.1} ULPs/sec (committed {reference:.1}, floor {floor:.1})",
                churn.spawn_per_sec
            );
            if churn.spawn_per_sec < floor {
                failed = true;
            }
        }
        None => {
            eprintln!(
                "perf-smoke: FAIL pooled churn: no \"pooled_churn_100k\" row in {}",
                path.display()
            );
            failed = true;
        }
    }
    let rss_verdict = if churn.peak_rss_mib < CHURN_RSS_CEILING_MIB {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "perf-smoke: {rss_verdict} pooled churn peak RSS: {:.1} MiB (ceiling {CHURN_RSS_CEILING_MIB:.0})",
        churn.peak_rss_mib
    );
    if churn.peak_rss_mib >= CHURN_RSS_CEILING_MIB {
        failed = true;
    }
    let recycle_ok = churn.stack_recycled > 0 && churn.stack_peak < CHURN_ULPS;
    println!(
        "perf-smoke: {} pooled churn stacks: peak {} recycled {}",
        if recycle_ok { "ok" } else { "FAIL" },
        churn.stack_peak,
        churn.stack_recycled
    );
    if !recycle_ok {
        failed = true;
    }

    // Wake-to-run structural gate: a traced socket ping-pong must attribute
    // its blocked reads to the peer's writes — nonzero `sock_read` edges
    // with a sane percentile ordering. Structure, not timing: no nanosecond
    // thresholds, just "the attribution layer is alive".
    let wake = ulp_bench::workloads::wake_to_run_snapshot(4, 64);
    let sock_read = wake
        .get("sock_read")
        .expect("sock_read is a wake site")
        .clone();
    let (p50, p99) = (sock_read.p50(), sock_read.p99());
    let wake_ok = wake.total_count() > 0
        && wake.total_sum() > 0
        && sock_read.count > 0
        && p50.is_finite()
        && p99.is_finite()
        && p99 >= p50;
    println!(
        "perf-smoke: {} wake-to-run sock_read: p50 {p50:.1} ns p99 {p99:.1} ns ({} edges, {} total across sites)",
        if wake_ok { "ok" } else { "FAIL" },
        sock_read.count,
        wake.total_count(),
    );
    if !wake_ok {
        failed = true;
    }

    if failed {
        eprintln!("perf-smoke: regression gate FAILED");
        std::process::exit(1);
    }
    println!("perf-smoke: all gates passed");
}
