//! Emit BENCH_2.json (direct-handoff coupling RTT + hit rate per idle
//! policy, and the contended-lock suite under- and oversubscribed).
fn main() {
    ulp_bench::bench2::run_and_save();
}
