//! Reproduce the paper's Figure 7 (open-write-close slowdown) for the
//! native profile and both modeled machines.
use ulp_kernel::ArchProfile;
fn main() {
    for p in [
        ArchProfile::Native,
        ArchProfile::Wallaby,
        ArchProfile::Albireo,
    ] {
        ulp_bench::repro::run_and_save(&format!("fig7-{}", short(p)), ulp_bench::repro::fig7(p));
    }
}
fn short(p: ArchProfile) -> &'static str {
    match p {
        ArchProfile::Native => "native",
        ArchProfile::Wallaby => "wallaby",
        ArchProfile::Albireo => "albireo",
    }
}
