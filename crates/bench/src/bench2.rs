//! Direct-handoff coupling and lock-suite metrics: `BENCH_2.json`.
//!
//! Emitted by `repro_all` (and the standalone `bench2` binary). Two
//! families of rows:
//!
//! - **Handoff**: the couple()/decouple() round trip on the direct-handoff
//!   fast path (two UCs ping-ponging over one original KC, every decouple
//!   switching straight into the parked requester), per idle policy, next
//!   to the pre-handoff slow-path baseline from
//!   [`crate::bench1::baseline`] — plus the hit rate observed by the
//!   runtime's own counters.
//! - **Locks**: ns per acquire of every [`RawUlpLock`] implementation
//!   under contention, in both the undersubscribed regime (contenders ≤
//!   scheduler KCs) and oversubscribed (contenders > scheduler KCs, where
//!   a spinning waiter can sit on the scheduler the holder needs).

use crate::bench1::baseline;
use crate::workloads::{self, HandoffRtt};
use ulp_core::{FutexLock, IdlePolicy, McsLock, RawUlpLock, TasLock, TicketLock};
use ulp_kernel::ArchProfile;

/// Contended-lock timings for one lock implementation.
#[derive(Debug, Clone, Copy)]
pub struct LockRow {
    /// The implementation's `RawUlpLock::NAME`.
    pub name: &'static str,
    /// ns per acquire, contenders ≤ scheduler KCs.
    pub undersub_ns: f64,
    /// ns per acquire, contenders > scheduler KCs.
    pub oversub_ns: f64,
}

/// One full BENCH_2 sweep.
#[derive(Debug, Clone)]
pub struct Bench2 {
    /// Handoff RTT + hit rate, BUSYWAIT idle.
    pub handoff_busywait: HandoffRtt,
    /// Handoff RTT + hit rate, BLOCKING idle.
    pub handoff_blocking: HandoffRtt,
    /// Handoff RTT + hit rate, ADAPTIVE idle.
    pub handoff_adaptive: HandoffRtt,
    /// One row per lock implementation, in suite order.
    pub locks: Vec<LockRow>,
}

/// Undersubscribed regime: as many contenders as scheduler KCs.
const UNDERSUB: (usize, usize) = (2, 2);
/// Oversubscribed regime: 4× more contenders than scheduler KCs.
const OVERSUB: (usize, usize) = (2, 8);

fn lock_row<R: RawUlpLock + 'static>(iters_each: usize) -> LockRow {
    LockRow {
        name: R::NAME,
        undersub_ns: workloads::contended_lock_ns::<R>(UNDERSUB.0, UNDERSUB.1, iters_each),
        oversub_ns: workloads::contended_lock_ns::<R>(OVERSUB.0, OVERSUB.1, iters_each),
    }
}

/// Run the BENCH_2 measurements (scale-aware, same min-of-ten protocol
/// where a min is meaningful; the lock rows are aggregate wall time — a
/// min over contenders would hide the convoying the rows exist to show).
pub fn measure() -> Bench2 {
    let iters = 1_000 * crate::repro::scale();
    Bench2 {
        handoff_busywait: workloads::couple_handoff_rtt(
            IdlePolicy::BusyWait,
            ArchProfile::Native,
            iters,
        ),
        handoff_blocking: workloads::couple_handoff_rtt(
            IdlePolicy::Blocking,
            ArchProfile::Native,
            iters,
        ),
        handoff_adaptive: workloads::couple_handoff_rtt(
            IdlePolicy::Adaptive,
            ArchProfile::Native,
            iters,
        ),
        locks: vec![
            lock_row::<TasLock>(iters),
            lock_row::<TicketLock>(iters),
            lock_row::<McsLock>(iters),
            lock_row::<FutexLock>(iters),
        ],
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Hand-rolled JSON (the build environment is offline; no serde).
pub fn to_json(b: &Bench2) -> String {
    let handoff = |name: &str, slow_path_ns: f64, h: &HandoffRtt| {
        let speedup = if h.rtt_ns > 0.0 && h.rtt_ns.is_finite() {
            slow_path_ns / h.rtt_ns
        } else {
            f64::NAN
        };
        format!(
            "    \"{name}\": {{\"unit\": \"ns\", \"slow_path_baseline\": {}, \"after\": {}, \"speedup\": {}, \"hit_rate\": {}}}",
            json_num(slow_path_ns),
            json_num(h.rtt_ns),
            if speedup.is_finite() {
                format!("{speedup:.2}")
            } else {
                "null".to_string()
            },
            if h.hit_rate.is_finite() {
                format!("{:.4}", h.hit_rate)
            } else {
                "null".to_string()
            },
        )
    };
    let handoff_rows = [
        handoff(
            "couple_rtt_handoff_busywait",
            baseline::COUPLE_RTT_BUSYWAIT_NS,
            &b.handoff_busywait,
        ),
        handoff(
            "couple_rtt_handoff_blocking",
            baseline::COUPLE_RTT_BLOCKING_NS,
            &b.handoff_blocking,
        ),
        handoff(
            "couple_rtt_handoff_adaptive",
            baseline::COUPLE_RTT_ADAPTIVE_NS,
            &b.handoff_adaptive,
        ),
    ];
    let lock_rows: Vec<String> = b
        .locks
        .iter()
        .map(|l| {
            format!(
                "    \"{}\": {{\"unit\": \"ns/acquire\", \"undersubscribed\": {}, \"oversubscribed\": {}}}",
                l.name,
                json_num(l.undersub_ns),
                json_num(l.oversub_ns),
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"ulp-rs direct-handoff coupling + lock suite\",\n  \"protocol\": \"handoff: min of {} runs, warm-up per run; locks: {}v{} and {}v{} ULPs-vs-KCs aggregate wall time\",\n  \"handoff\": {{\n{}\n  }},\n  \"locks\": {{\n{}\n  }}\n}}\n",
        crate::RUNS,
        UNDERSUB.1,
        UNDERSUB.0,
        OVERSUB.1,
        OVERSUB.0,
        handoff_rows.join(",\n"),
        lock_rows.join(",\n"),
    )
}

/// Measure, print, and drop `BENCH_2.json` in the results directory.
pub fn run_and_save() {
    let b = measure();
    let json = to_json(&b);
    print!("{json}");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_2.json");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[json] failed to create {}: {e}", dir.display());
        return;
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_enough() {
        let b = Bench2 {
            handoff_busywait: HandoffRtt {
                rtt_ns: 500.0,
                hit_rate: 1.0,
            },
            handoff_blocking: HandoffRtt {
                rtt_ns: 600.0,
                hit_rate: 0.999,
            },
            handoff_adaptive: HandoffRtt {
                rtt_ns: 550.0,
                hit_rate: 1.0,
            },
            locks: vec![
                LockRow {
                    name: "tas",
                    undersub_ns: 100.0,
                    oversub_ns: 200.0,
                },
                LockRow {
                    name: "futex2l",
                    undersub_ns: 150.0,
                    oversub_ns: 120.0,
                },
            ],
        };
        let s = to_json(&b);
        assert!(s.contains("\"couple_rtt_handoff_busywait\""));
        assert!(s.contains("\"hit_rate\": 1.0000"));
        assert!(s.contains("\"tas\""));
        assert!(s.contains("\"oversubscribed\": 200.0"));
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced JSON: {s}"
        );
        // An unmeasured sweep still renders valid JSON.
        let empty = Bench2 {
            handoff_busywait: HandoffRtt {
                rtt_ns: f64::INFINITY,
                hit_rate: f64::NAN,
            },
            locks: vec![],
            ..b
        };
        let s = to_json(&empty);
        assert!(s.contains("\"after\": null"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn handoff_hits_and_beats_slow_path() {
        // A tiny measured run: the deterministic ping-pong must hand off
        // on (essentially) every decouple and beat the slow-path RTT the
        // same binary measures, even at smoke iteration counts.
        let h = workloads::couple_handoff_rtt(IdlePolicy::BusyWait, ArchProfile::Native, 200);
        assert!(
            h.hit_rate > 0.9,
            "handoff hit rate {:.4} <= 0.9",
            h.hit_rate
        );
        assert!(h.rtt_ns.is_finite() && h.rtt_ns > 0.0, "rtt {}", h.rtt_ns);
        let slow = workloads::couple_rtt_ns(IdlePolicy::BusyWait, ArchProfile::Native, 200);
        assert!(
            h.rtt_ns < slow,
            "handoff RTT {} ns should beat slow path {} ns",
            h.rtt_ns,
            slow
        );
    }

    #[test]
    fn contended_lock_measures() {
        let ns = workloads::contended_lock_ns::<TasLock>(1, 2, 200);
        assert!(ns.is_finite() && ns > 0.0, "tas contended ns {ns}");
    }
}
