//! # ulp-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§VI): Table III (context switch & TLS load), Table IV
//! (yielding), Table V (`getpid`), Figure 7 (open-write-close slowdown vs
//! AIO) and Figure 8 (overlap ratios). One binary per artifact
//! (`cargo run -p ulp-bench --release --bin table3` …) plus `repro_all`.
//!
//! ## Measurement protocol
//!
//! Exactly the paper's (§VI-A): every measurement has "a warming up loop
//! followed by a measurement loop", and "all values are the minimum ones of
//! ten runs". [`measure_min`] implements that protocol; cycle counts come
//! from RDTSC as in the paper.

#![warn(missing_docs)]

pub mod baselines;
pub mod bench1;
pub mod bench2;
pub mod bench3;
pub mod report;
pub mod workloads;

use std::time::Instant;

/// Number of runs from which the minimum is taken (paper: ten).
pub const RUNS: usize = 10;

/// One timed measurement following the paper's protocol: per run, a warm-up
/// loop of `iters / 10 + 1` iterations, then `iters` measured iterations;
/// the reported value is the minimum per-iteration time (in nanoseconds)
/// over [`RUNS`] runs.
pub fn measure_min(iters: usize, mut op: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        for _ in 0..(iters / 10 + 1) {
            op(); // warm-up
        }
        let t = Instant::now();
        for _ in 0..iters {
            op();
        }
        let per_op = t.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_op);
    }
    best
}

/// Like [`measure_min`] but for operations that measure themselves (e.g. a
/// whole scenario returning its own duration): minimum of [`RUNS`] calls.
pub fn min_of_runs(mut scenario: impl FnMut() -> f64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..RUNS {
        best = best.min(scenario());
    }
    best
}

/// Convert nanoseconds to cycles with the calibrated TSC frequency
/// (reported like the paper's "Cycles" columns; only meaningful on
/// x86_64, the paper makes the same caveat for AArch64).
pub fn ns_to_cycles(ns: f64) -> u64 {
    (ns * ulp_kernel::cycles_per_ns()) as u64
}

/// Format seconds in the paper's scientific notation (e.g. `3.34E-8`).
pub fn sci(ns: f64) -> String {
    let secs = ns * 1e-9;
    if secs == 0.0 {
        return "0".to_string();
    }
    let exp = secs.abs().log10().floor() as i32;
    let mantissa = secs / 10f64.powi(exp);
    format!("{mantissa:.2}E{exp}")
}

/// The write-buffer size sweep used by Figs. 7 and 8.
pub const BUFFER_SIZES: [usize; 9] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
];

/// Pretty-print a byte size (for table headers).
pub fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KiB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_min_returns_positive_ns() {
        let ns = measure_min(1000, || {
            std::hint::black_box(1 + 1);
        });
        assert!((0.0..1e6).contains(&ns), "per-op {ns} ns");
    }

    #[test]
    fn measure_min_is_minimum() {
        // A scenario with occasional slow iterations: the min filters noise.
        let mut calls = 0u64;
        let ns = measure_min(100, || {
            calls += 1;
            if calls.is_multiple_of(97) {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        });
        // The minimum run should be well below the average-with-sleeps.
        assert!(ns < 40_000.0, "min filtered poorly: {ns}");
    }

    #[test]
    fn sci_matches_paper_format() {
        assert_eq!(sci(33.4), "3.34E-8");
        assert_eq!(sci(150.0), "1.50E-7");
        assert_eq!(sci(2910.0), "2.91E-6");
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(256), "256B");
        assert_eq!(human_size(4096), "4KiB");
        assert_eq!(human_size(1 << 20), "1MiB");
    }

    #[test]
    fn min_of_runs_takes_min() {
        let mut i = 0.0;
        let v = min_of_runs(|| {
            i += 1.0;
            10.0 - i
        });
        assert_eq!(v, 10.0 - RUNS as f64);
    }
}

pub mod repro;
