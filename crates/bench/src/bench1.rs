//! Machine-readable hot-path metrics: `BENCH_1.json`.
//!
//! Emitted by `repro_all` (and the standalone `bench1` binary). Reports the
//! switch-path numbers the hot-path overhaul targets — yield latency under
//! both scheduling disciplines, the bare couple()/decouple() round trip,
//! and aggregate switch throughput under 4-KC over-subscription — next to
//! the pre-overhaul baseline measured on the same machine at the commit
//! where the switch path still took the global-atomics / per-switch-Arc
//! route (see [`baseline`]).

use crate::workloads;
use ulp_core::{HistSummary, IdlePolicy, SchedPolicy};
use ulp_kernel::ArchProfile;

/// Pre-overhaul numbers, measured with the seed-equivalent switch path
/// (global `Stats` atomics, per-switch `Arc`/`RefCell` TLS traffic,
/// mutex-guarded sigmask) on this host. Regenerate with
/// `cargo run --release -p ulp-bench --bin bench1 -- --print-raw` at the
/// baseline commit. Figures are the best (fastest) of two baseline runs on
/// the reference host — the conservative comparison point for the
/// improvement numbers.
pub mod baseline {
    /// ns per yield, global FIFO (baseline).
    pub const YIELD_FIFO_NS: f64 = 207.9;
    /// ns per yield, work stealing (baseline).
    pub const YIELD_WS_NS: f64 = 174.0;
    /// ns per couple/decouple round trip, BUSYWAIT (baseline).
    pub const COUPLE_RTT_BUSYWAIT_NS: f64 = 4325.1;
    /// ns per couple/decouple round trip, BLOCKING (baseline).
    pub const COUPLE_RTT_BLOCKING_NS: f64 = 2881.6;
    /// ns per couple/decouple round trip, ADAPTIVE. The adaptive idle
    /// policy was never part of the baseline campaign (it postdates the
    /// pre-overhaul commit), so the Blocking figure — the regime Adaptive
    /// falls back to once its spin streak runs dry — is reused as the
    /// nearest slow-path reference point.
    pub const COUPLE_RTT_ADAPTIVE_NS: f64 = COUPLE_RTT_BLOCKING_NS;
    /// Aggregate switches/sec, 8 ULPs over 4 KCs (baseline).
    pub const OVERSUB4_SWITCHES_PER_SEC: f64 = 3075197.7;
}

/// One full switch-path measurement sweep (the numbers the hot-path
/// overhaul is judged by).
#[derive(Debug, Clone, Copy)]
pub struct Bench1 {
    /// ns per yield, 2 ULPs / 1 scheduler, BUSYWAIT, global FIFO.
    pub yield_fifo_ns: f64,
    /// ns per yield, 2 ULPs / 1 scheduler, BUSYWAIT, work stealing.
    pub yield_ws_ns: f64,
    /// ns per bare couple()+decouple() round trip, BUSYWAIT.
    pub couple_rtt_busywait_ns: f64,
    /// ns per bare couple()+decouple() round trip, BLOCKING.
    pub couple_rtt_blocking_ns: f64,
    /// ns per bare couple()+decouple() round trip, ADAPTIVE (spin a
    /// bounded streak on the idle KC before falling back to the futex).
    pub couple_rtt_adaptive_ns: f64,
    /// Aggregate switches/sec: 8 yield-looping ULPs over 4 scheduler KCs.
    pub oversub4_switches_per_sec: f64,
    /// Yield-to-yield interval distribution (BUSYWAIT, global FIFO), from
    /// the runtime's latency histograms — a traced run separate from the
    /// mean measurements above.
    pub yield_interval: HistSummary,
    /// Couple-request→resume distribution (BLOCKING), traced run.
    pub couple_resume: HistSummary,
    /// Run-queue enqueue→dispatch distribution (BLOCKING), traced run.
    pub queue_delay: HistSummary,
    /// Kernel `getpid` enter→exit span distribution (coupled, traced run)
    /// from the per-syscall latency histograms — the same series the
    /// metrics endpoint exports as `ulp_syscall_latency_ns{call="getpid"}`.
    pub syscall_getpid: HistSummary,
    /// 100k pooled ULPs churned through [`POOL_KCS`] pool KCs in waves.
    pub churn_100k: workloads::PooledChurn,
    /// 1M pooled ULPs churned the same way — the oversubscription scale
    /// claim: RSS stays wave-bounded while a million ULPs live and die.
    pub churn_1m: workloads::PooledChurn,
    /// 100k simultaneously-runnable pooled ULPs yield-storming: aggregate
    /// switch throughput once the sharded run queues carry the load.
    pub yield_storm_100k: workloads::PooledStorm,
}

/// Pool KCs the scale rows run on — "a handful", pinned so the rows are
/// comparable across hosts regardless of core count.
pub const POOL_KCS: usize = 4;
/// Wave size for the churn rows (reaped before the next wave spawns, so
/// the stack free-list's high-water mark is bounded by it).
pub const CHURN_WAVE: usize = 4096;

/// Run the BENCH_1 measurements (scale-aware, same min-of-ten protocol as
/// every other artifact).
pub fn measure() -> Bench1 {
    let iters = 5_000 * crate::repro::scale();
    let couple_hists = workloads::couple_latency_summaries(IdlePolicy::Blocking, iters / 5);
    Bench1 {
        yield_fifo_ns: workloads::ulp_yield_ns_sched(
            IdlePolicy::BusyWait,
            SchedPolicy::GlobalFifo,
            ArchProfile::Native,
            iters,
        ),
        yield_ws_ns: workloads::ulp_yield_ns_sched(
            IdlePolicy::BusyWait,
            SchedPolicy::WorkStealing,
            ArchProfile::Native,
            iters,
        ),
        couple_rtt_busywait_ns: workloads::couple_rtt_ns(
            IdlePolicy::BusyWait,
            ArchProfile::Native,
            iters / 5,
        ),
        couple_rtt_blocking_ns: workloads::couple_rtt_ns(
            IdlePolicy::Blocking,
            ArchProfile::Native,
            iters / 5,
        ),
        couple_rtt_adaptive_ns: workloads::couple_rtt_ns(
            IdlePolicy::Adaptive,
            ArchProfile::Native,
            iters / 5,
        ),
        oversub4_switches_per_sec: workloads::oversub_switches_per_sec(
            4,
            SchedPolicy::GlobalFifo,
            8,
            iters,
        ),
        yield_interval: workloads::yield_interval_summary(
            IdlePolicy::BusyWait,
            SchedPolicy::GlobalFifo,
            iters,
        ),
        couple_resume: couple_hists.0,
        queue_delay: couple_hists.1,
        syscall_getpid: workloads::syscall_getpid_summary(iters / 5),
        churn_100k: workloads::pooled_churn(100_000, CHURN_WAVE, POOL_KCS),
        churn_1m: workloads::pooled_churn(1_000_000, CHURN_WAVE, POOL_KCS),
        yield_storm_100k: workloads::pooled_yield_storm(100_000, 4, POOL_KCS),
    }
}

fn pct_faster(before: f64, after: f64) -> f64 {
    if before.is_finite() && before > 0.0 {
        100.0 * (before - after) / before
    } else {
        f64::NAN
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Hand-rolled JSON (the build environment is offline; no serde).
pub fn to_json(b: &Bench1) -> String {
    let metric = |name: &str, unit: &str, before: f64, after: f64, improvement: f64| {
        format!(
            "    \"{name}\": {{\"unit\": \"{unit}\", \"before\": {}, \"after\": {}, \"improvement_pct\": {}}}",
            json_num(before),
            json_num(after),
            json_num(improvement),
        )
    };
    let rows = [
        metric(
            "yield_latency_global_fifo",
            "ns",
            baseline::YIELD_FIFO_NS,
            b.yield_fifo_ns,
            pct_faster(baseline::YIELD_FIFO_NS, b.yield_fifo_ns),
        ),
        metric(
            "yield_latency_work_stealing",
            "ns",
            baseline::YIELD_WS_NS,
            b.yield_ws_ns,
            pct_faster(baseline::YIELD_WS_NS, b.yield_ws_ns),
        ),
        metric(
            "couple_decouple_rtt_busywait",
            "ns",
            baseline::COUPLE_RTT_BUSYWAIT_NS,
            b.couple_rtt_busywait_ns,
            pct_faster(baseline::COUPLE_RTT_BUSYWAIT_NS, b.couple_rtt_busywait_ns),
        ),
        metric(
            "couple_decouple_rtt_blocking",
            "ns",
            baseline::COUPLE_RTT_BLOCKING_NS,
            b.couple_rtt_blocking_ns,
            pct_faster(baseline::COUPLE_RTT_BLOCKING_NS, b.couple_rtt_blocking_ns),
        ),
        metric(
            "couple_decouple_rtt_adaptive",
            "ns",
            baseline::COUPLE_RTT_ADAPTIVE_NS,
            b.couple_rtt_adaptive_ns,
            pct_faster(baseline::COUPLE_RTT_ADAPTIVE_NS, b.couple_rtt_adaptive_ns),
        ),
        metric(
            "oversub_4kc_switch_throughput",
            "switches/sec",
            baseline::OVERSUB4_SWITCHES_PER_SEC,
            b.oversub4_switches_per_sec,
            // Throughput: higher is better — report the relative gain over
            // the baseline, positive for an improvement.
            -pct_faster(
                baseline::OVERSUB4_SWITCHES_PER_SEC,
                b.oversub4_switches_per_sec,
            ),
        ),
    ];
    let pct_row = |name: &str, s: &HistSummary| {
        format!(
            "    \"{name}\": {{\"unit\": \"ns\", \"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}}",
            s.count,
            json_num(s.p50_ns),
            json_num(s.p95_ns),
            json_num(s.p99_ns),
            s.max_ns,
            json_num(s.mean_ns),
        )
    };
    let pct_rows = [
        pct_row("yield_interval", &b.yield_interval),
        pct_row("couple_resume", &b.couple_resume),
        pct_row("queue_delay", &b.queue_delay),
        pct_row("syscall_getpid_latency", &b.syscall_getpid),
    ];
    let churn_row = |name: &str, c: &workloads::PooledChurn| {
        format!(
            "    \"{name}\": {{\"ulps\": {}, \"pool_kcs\": {POOL_KCS}, \"wave\": {CHURN_WAVE}, \"spawn_per_sec\": {}, \"peak_rss_mib\": {}, \"stack_peak\": {}, \"stack_recycled\": {}}}",
            c.ulps,
            json_num(c.spawn_per_sec),
            json_num(c.peak_rss_mib),
            c.stack_peak,
            c.stack_recycled,
        )
    };
    let scale_rows = [
        churn_row("pooled_churn_100k", &b.churn_100k),
        churn_row("pooled_churn_1m", &b.churn_1m),
        format!(
            "    \"pooled_yield_storm_100k\": {{\"ulps\": {}, \"pool_kcs\": {POOL_KCS}, \"switches_per_sec\": {}, \"peak_rss_mib\": {}}}",
            b.yield_storm_100k.ulps,
            json_num(b.yield_storm_100k.switches_per_sec),
            json_num(b.yield_storm_100k.peak_rss_mib),
        ),
    ];
    format!(
        "{{\n  \"bench\": \"ulp-rs hot-path overhaul\",\n  \"protocol\": \"min of {} runs, warm-up loop per run\",\n  \"metrics\": {{\n{}\n  }},\n  \"percentiles\": {{\n{}\n  }},\n  \"scale\": {{\n{}\n  }}\n}}\n",
        crate::RUNS,
        rows.join(",\n"),
        pct_rows.join(",\n"),
        scale_rows.join(",\n"),
    )
}

/// Measure, print, and drop `BENCH_1.json` in the results directory.
pub fn run_and_save() {
    let b = measure();
    let json = to_json(&b);
    print!("{json}");
    let dir = crate::report::results_dir();
    let path = dir.join("BENCH_1.json");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("[json] failed to create {}: {e}", dir.display());
        return;
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("[json] failed to write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> HistSummary {
        HistSummary {
            count: 1000,
            p50_ns: 150.0,
            p95_ns: 300.0,
            p99_ns: 450.0,
            max_ns: 900,
            mean_ns: 180.0,
        }
    }

    fn sample_churn(n: usize) -> workloads::PooledChurn {
        workloads::PooledChurn {
            ulps: n,
            spawn_per_sec: 250_000.0,
            peak_rss_mib: 120.5,
            stack_peak: 4096,
            stack_recycled: n.saturating_sub(4096),
        }
    }

    fn sample_storm() -> workloads::PooledStorm {
        workloads::PooledStorm {
            ulps: 100_000,
            switches_per_sec: 3.0e6,
            peak_rss_mib: 800.0,
        }
    }

    #[test]
    fn json_shape_is_parseable_enough() {
        let b = Bench1 {
            yield_fifo_ns: 123.4,
            yield_ws_ns: 100.0,
            couple_rtt_busywait_ns: 1500.0,
            couple_rtt_blocking_ns: 2900.0,
            couple_rtt_adaptive_ns: 2900.0,
            oversub4_switches_per_sec: 1.0e6,
            yield_interval: sample_summary(),
            couple_resume: sample_summary(),
            queue_delay: sample_summary(),
            syscall_getpid: sample_summary(),
            churn_100k: sample_churn(100_000),
            churn_1m: sample_churn(1_000_000),
            yield_storm_100k: sample_storm(),
        };
        let s = to_json(&b);
        assert!(s.contains("\"yield_latency_global_fifo\""));
        assert!(s.contains("\"after\": 123.4"));
        // Balanced braces — crude but catches truncation.
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced JSON: {s}"
        );
    }

    #[test]
    fn json_has_percentile_rows() {
        let b = Bench1 {
            yield_fifo_ns: 100.0,
            yield_ws_ns: 100.0,
            couple_rtt_busywait_ns: 1000.0,
            couple_rtt_blocking_ns: 1000.0,
            couple_rtt_adaptive_ns: 1000.0,
            oversub4_switches_per_sec: 1.0e6,
            yield_interval: sample_summary(),
            couple_resume: sample_summary(),
            queue_delay: sample_summary(),
            syscall_getpid: sample_summary(),
            churn_100k: sample_churn(100_000),
            churn_1m: sample_churn(1_000_000),
            yield_storm_100k: sample_storm(),
        };
        let s = to_json(&b);
        for row in [
            "\"yield_interval\"",
            "\"couple_resume\"",
            "\"queue_delay\"",
            "\"syscall_getpid_latency\"",
        ] {
            assert!(s.contains(row), "missing percentile row {row} in {s}");
        }
        assert!(s.contains("\"p50\": 150.0"));
        assert!(s.contains("\"p95\": 300.0"));
        assert!(s.contains("\"p99\": 450.0"));
        assert!(s.contains("\"max\": 900"));
        // An unmeasured summary still renders as valid JSON (NaN
        // percentiles become null via json_num).
        let empty = Bench1 {
            yield_interval: HistSummary::default(),
            ..b
        };
        let s = to_json(&empty);
        assert!(s.contains("\"count\": 0"));
        assert!(s.matches('{').count() == s.matches('}').count());
    }

    #[test]
    fn measured_percentiles_are_ordered() {
        // A tiny traced run: the folded histogram must produce ordered,
        // populated percentiles (p50 <= p95 <= p99 <= max).
        let s =
            workloads::yield_interval_summary(IdlePolicy::BusyWait, SchedPolicy::GlobalFifo, 2_000);
        assert!(s.count > 0, "traced yields must land samples: {s:?}");
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns, "{s:?}");
        assert!(s.p99_ns <= s.max_ns as f64 + 1e-9, "{s:?}");
    }

    #[test]
    fn pct_faster_sign() {
        assert!((pct_faster(200.0, 100.0) - 50.0).abs() < 1e-9);
        assert!(pct_faster(f64::NAN, 100.0).is_nan());
    }

    #[test]
    fn throughput_gain_is_positive() {
        // Throughput doubled → the JSON must report a positive gain.
        let b = Bench1 {
            yield_fifo_ns: 100.0,
            yield_ws_ns: 100.0,
            couple_rtt_busywait_ns: 1000.0,
            couple_rtt_blocking_ns: 1000.0,
            couple_rtt_adaptive_ns: 1000.0,
            oversub4_switches_per_sec: 2.0 * baseline::OVERSUB4_SWITCHES_PER_SEC,
            yield_interval: sample_summary(),
            couple_resume: sample_summary(),
            queue_delay: sample_summary(),
            syscall_getpid: sample_summary(),
            churn_100k: sample_churn(100_000),
            churn_1m: sample_churn(1_000_000),
            yield_storm_100k: sample_storm(),
        };
        let s = to_json(&b);
        let row = s
            .lines()
            .find(|l| l.contains("oversub_4kc_switch_throughput"))
            .unwrap();
        assert!(row.contains("\"improvement_pct\": 100.0"), "row: {row}");
    }
}
