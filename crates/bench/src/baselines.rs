//! Real-kernel baselines: `sched_yield(2)` between PThreads (Table IV rows
//! 2–3) and the real `getpid(2)` (Table V's "Linux" row).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pin the calling thread to `core`; returns whether it stuck.
pub fn pin_to_core(core: usize) -> bool {
    crate_pin(core)
}

fn crate_pin(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(core % libc::CPU_SETSIZE as usize, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

/// Number of CPUs visible to this process.
pub fn n_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Result of a `sched_yield` baseline run.
#[derive(Debug, Clone, Copy)]
pub struct YieldBaseline {
    /// ns per yield (total elapsed / total yields).
    pub ns_per_yield: f64,
    /// Whether both threads were successfully pinned as requested.
    pub pinned: bool,
}

/// Two PThreads calling `sched_yield` `iters` times each, pinned to one
/// core or to two cores (Table IV's two baseline rows). On a host with a
/// single CPU the two-core variant degrades to one core (reported via
/// `pinned`).
pub fn sched_yield_ns(two_cores: bool, iters: usize) -> YieldBaseline {
    let cores = if two_cores { [0usize, 1] } else { [0, 0] };
    let can_pin = !two_cores || n_cpus() >= 2;
    let start = Arc::new(AtomicBool::new(false));
    let pin_ok = Arc::new(AtomicBool::new(true));

    let worker = |core: usize, start: Arc<AtomicBool>, pin_ok: Arc<AtomicBool>| {
        std::thread::spawn(move || {
            if !crate_pin(core) {
                pin_ok.store(false, Ordering::Relaxed);
            }
            while !start.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            for _ in 0..iters {
                #[cfg(target_os = "linux")]
                unsafe {
                    libc::sched_yield();
                }
                #[cfg(not(target_os = "linux"))]
                std::thread::yield_now();
            }
        })
    };

    let t1 = worker(cores[0], start.clone(), pin_ok.clone());
    let t2 = worker(cores[1], start.clone(), pin_ok.clone());
    // Give both threads a moment to pin and reach the start gate.
    std::thread::sleep(std::time::Duration::from_millis(5));
    let t = Instant::now();
    start.store(true, Ordering::Release);
    t1.join().unwrap();
    t2.join().unwrap();
    let elapsed = t.elapsed().as_nanos() as f64;
    YieldBaseline {
        ns_per_yield: elapsed / (2 * iters) as f64,
        pinned: can_pin && pin_ok.load(Ordering::Relaxed),
    }
}

/// The real `getpid(2)`, ns per call (min-of-runs protocol).
pub fn real_getpid_ns(iters: usize) -> f64 {
    crate::measure_min(iters, || {
        #[cfg(target_os = "linux")]
        unsafe {
            std::hint::black_box(libc::getpid());
        }
        #[cfg(not(target_os = "linux"))]
        std::hint::black_box(std::process::id());
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_getpid_is_submicrosecond() {
        let ns = real_getpid_ns(5_000);
        assert!(ns > 0.0 && ns < 100_000.0, "getpid {ns} ns");
    }

    #[test]
    fn sched_yield_completes() {
        let r = sched_yield_ns(false, 2_000);
        assert!(r.ns_per_yield > 0.0);
    }

    #[test]
    fn two_core_request_reports_pin_state() {
        let r = sched_yield_ns(true, 500);
        if n_cpus() < 2 {
            assert!(
                !r.pinned,
                "cannot truly pin to two cores on {} cpu",
                n_cpus()
            );
        }
    }

    #[test]
    fn n_cpus_positive() {
        assert!(n_cpus() >= 1);
    }
}
