//! Integration tests for ulp-mpi: latency hiding under over-subscription,
//! communication stress, and ULP semantics of ranks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ulp_core::{coupled_scope, sys, IdlePolicy};
use ulp_mpi::{NetModel, ReduceOp, UlpWorld, ANY_SOURCE, ANY_TAG};

#[test]
fn ranks_have_distinct_kernel_identities() {
    let world = UlpWorld::builder().ranks(4).schedulers(1).build();
    let pids = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let p = pids.clone();
    let codes = world.run("ids", move |ctx| {
        let pid = coupled_scope(|| sys::getpid().unwrap()).unwrap();
        p.lock().push((ctx.rank(), pid));
        0
    });
    assert_eq!(codes, vec![0; 4]);
    let mut seen: Vec<_> = pids.lock().iter().map(|(_, p)| *p).collect();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 4, "one kernel process per rank");
}

#[test]
fn latency_hiding_with_oversubscription() {
    // N ranks each wait for one 20ms-ish message; on one scheduler the
    // waits must overlap — total << N * latency.
    const N: usize = 6;
    let net = NetModel {
        latency: Duration::from_millis(20),
        ns_per_byte: 0.0,
    };
    let world = UlpWorld::builder().ranks(N).schedulers(1).net(net).build();
    let t = Instant::now();
    let codes = world.run("hide", |ctx| {
        let me = ctx.rank();
        let peer = (me + 1) % ctx.size();
        ctx.send(peer, 0, &[me as u8]);
        let got = ctx.recv(((me + ctx.size() - 1) % ctx.size()) as i32, 0);
        (got.data[0] as usize == (me + ctx.size() - 1) % ctx.size()) as i32 - 1
    });
    let elapsed = t.elapsed();
    assert!(codes.iter().all(|&c| c == 0));
    // Serial waits would cost ~N*20ms = 120ms; overlapped, ~20ms + spawn
    // overhead. Allow generous slack for a loaded host.
    assert!(
        elapsed < Duration::from_millis(90),
        "waits did not overlap: {elapsed:?}"
    );
}

#[test]
fn heavy_all_to_all_traffic() {
    const N: usize = 5;
    const MSGS: usize = 40;
    let world = UlpWorld::builder().ranks(N).schedulers(2).build();
    let received = Arc::new(AtomicUsize::new(0));
    let r = received.clone();
    let codes = world.run("a2a", move |ctx| {
        let me = ctx.rank();
        for round in 0..MSGS {
            for dest in 0..ctx.size() {
                if dest != me {
                    ctx.send(dest, round as i32, &[me as u8, round as u8]);
                }
            }
        }
        let expect = (ctx.size() - 1) * MSGS;
        for _ in 0..expect {
            let m = ctx.recv(ANY_SOURCE, ANY_TAG);
            assert_eq!(m.data[0] as usize, m.src);
            r.fetch_add(1, Ordering::Relaxed);
        }
        0
    });
    assert_eq!(codes, vec![0; N]);
    assert_eq!(received.load(Ordering::Relaxed), N * (N - 1) * MSGS);
}

#[test]
fn collectives_compose_over_many_rounds() {
    let world = UlpWorld::builder()
        .ranks(4)
        .schedulers(2)
        .idle_policy(IdlePolicy::BusyWait)
        .build();
    let codes = world.run("rounds", |ctx| {
        let mut value = ctx.rank() as f64;
        for round in 0..10 {
            let sum = ctx.allreduce(ReduceOp::Sum, &[value]);
            // Everyone computes the same next value: deterministic lockstep.
            value = sum[0] / ctx.size() as f64 + round as f64;
            ctx.barrier();
        }
        // After 10 rounds all ranks agree.
        let check = ctx.allreduce(ReduceOp::Max, &[value]);
        ((check[0] - value).abs() < 1e-9) as i32 - 1
    });
    assert_eq!(codes, vec![0; 4]);
}

#[test]
fn mixed_io_and_communication() {
    // Ranks alternate coupled file I/O with messaging — the full ULP story.
    let world = UlpWorld::builder().ranks(3).schedulers(1).build();
    let codes = world.run("mixed", |ctx| {
        use ulp_core::ulp_kernel::OpenFlags;
        let me = ctx.rank();
        for step in 0..5 {
            coupled_scope(|| {
                let fd = sys::open(
                    &format!("/r{me}.log"),
                    OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::APPEND,
                )
                .unwrap();
                sys::write(fd, format!("step {step}\n").as_bytes()).unwrap();
                sys::close(fd).unwrap();
            })
            .unwrap();
            ctx.send((me + 1) % ctx.size(), step, b"tick");
            ctx.recv(ANY_SOURCE, step);
        }
        let size = coupled_scope(|| sys::stat(&format!("/r{me}.log")).unwrap().size).unwrap();
        (size == 5 * 7) as i32 - 1 // five "step N\n" lines
    });
    assert_eq!(codes, vec![0; 3]);
}

#[test]
fn probe_sees_only_delivered_messages() {
    let net = NetModel {
        latency: Duration::from_millis(30),
        ns_per_byte: 0.0,
    };
    let world = UlpWorld::builder().ranks(2).schedulers(1).net(net).build();
    let codes = world.run("probe", |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 5, b"slow");
            0
        } else {
            // Immediately: nothing visible (in flight on the "network").
            let early = ctx.iprobe(0, 5).is_none();
            let got = ctx.recv(0, 5);
            (early && got.data == b"slow") as i32 - 1
        }
    });
    assert_eq!(codes, vec![0, 0]);
}
