//! Running an MPI-style program with ranks as user-level processes.
//!
//! §III: "most MPI implementations are based on multi-process execution
//! model … Therefore, ULP is a more suitable execution model than ULT."
//! [`UlpWorld`] spawns each rank as a PiP task (a BLT with its own kernel
//! identity), immediately decouples it into the scheduled pool, and lets
//! `NCprog` scheduler kernel contexts run an over-subscribed rank set —
//! the paper's Fig. 6 deployment, with communication stalls hidden by
//! cooperative yields.

use crate::comm::{RankCtx, WorldShared};
use crate::net::NetModel;
use std::sync::Arc;
use ulp_core::IdlePolicy;
use ulp_pip::{PipRoot, Program};

/// Builder for [`UlpWorld`].
pub struct UlpWorldBuilder {
    ranks: usize,
    schedulers: usize,
    net: NetModel,
    idle_policy: IdlePolicy,
    decouple_ranks: bool,
}

impl UlpWorldBuilder {
    /// World size (number of MPI-style ranks; at least 1).
    pub fn ranks(mut self, n: usize) -> Self {
        self.ranks = n.max(1);
        self
    }
    /// Scheduler kernel contexts (`NCprog`); ranks > schedulers means
    /// over-subscription.
    pub fn schedulers(mut self, n: usize) -> Self {
        self.schedulers = n.max(1);
        self
    }
    /// The simulated communication-latency model.
    pub fn net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }
    /// Idle-KC policy for the underlying runtime (§VI-C).
    pub fn idle_policy(mut self, p: IdlePolicy) -> Self {
        self.idle_policy = p;
        self
    }
    /// Keep ranks coupled (one OS thread each, conventional MPI shape) —
    /// the baseline an over-subscription comparison runs against.
    pub fn coupled_ranks(mut self) -> Self {
        self.decouple_ranks = false;
        self
    }

    /// Build the world (starts the PiP root and its runtime).
    pub fn build(self) -> UlpWorld {
        let root = PipRoot::builder()
            .schedulers(self.schedulers)
            .idle_policy(self.idle_policy)
            .build();
        UlpWorld {
            shared: WorldShared::new(self.ranks, self.net),
            root,
            ranks: self.ranks,
            decouple_ranks: self.decouple_ranks,
        }
    }
}

/// A world of MPI-style ranks executing as user-level processes.
pub struct UlpWorld {
    root: PipRoot,
    shared: Arc<WorldShared>,
    ranks: usize,
    decouple_ranks: bool,
}

impl UlpWorld {
    /// Configure a world (defaults: 2 ranks, 1 scheduler, instant network,
    /// blocking idle KCs, decoupled ranks).
    pub fn builder() -> UlpWorldBuilder {
        UlpWorldBuilder {
            ranks: 2,
            schedulers: 1,
            net: NetModel::INSTANT,
            idle_policy: IdlePolicy::Blocking,
            decouple_ranks: true,
        }
    }

    /// World size (number of ranks `run` will spawn).
    pub fn size(&self) -> usize {
        self.ranks
    }

    /// The underlying PiP root (for spawning extra, non-rank tasks).
    pub fn pip(&self) -> &PipRoot {
        &self.root
    }

    /// Run `f` on every rank; returns the per-rank exit codes in rank
    /// order. Each rank is a PiP task (own simulated PID); decoupled into
    /// the ULP pool unless `coupled_ranks()` was requested.
    pub fn run<F>(&self, name: &str, f: F) -> Vec<i32>
    where
        F: Fn(RankCtx) -> i32 + Send + Sync + 'static,
    {
        let shared = self.shared.clone();
        let f = Arc::new(f);
        let decouple = self.decouple_ranks;
        let program = Program::new(name, move |task| {
            if decouple {
                ulp_core::decouple().expect("rank decouples into the pool");
            }
            let ctx = RankCtx::new(task.rank(), shared.clone());
            f(ctx)
        });
        let tasks = self.root.spawn_n(&program, self.ranks);
        tasks.iter().map(|t| t.wait()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn ring_pass_over_subscribed() {
        // 6 ranks on 1 scheduler: a token circulates the ring; only
        // cooperative scheduling can make progress.
        let world = UlpWorld::builder().ranks(6).schedulers(1).build();
        let codes = world.run("ring", |ctx| {
            let n = ctx.size();
            let me = ctx.rank();
            if me == 0 {
                ctx.send(1, 0, &[1u8]);
                let token = ctx.recv((n - 1) as i32, 0);
                token.data[0] as i32
            } else {
                let token = ctx.recv((me - 1) as i32, 0);
                let next = (me + 1) % n;
                ctx.send(next, 0, &[token.data[0] + 1]);
                0
            }
        });
        assert_eq!(codes[0], 6, "token incremented once per hop");
    }

    #[test]
    fn allreduce_across_ulp_ranks() {
        let world = UlpWorld::builder().ranks(4).schedulers(2).build();
        let codes = world.run("allred", |ctx| {
            let sum = ctx.allreduce(ReduceOp::Sum, &[ctx.rank() as f64]);
            (sum[0] as i32) - 6 // 0 on success
        });
        assert_eq!(codes, vec![0, 0, 0, 0]);
    }

    #[test]
    fn coupled_ranks_also_work() {
        let world = UlpWorld::builder()
            .ranks(3)
            .schedulers(1)
            .coupled_ranks()
            .build();
        let codes = world.run("coupled", |ctx| {
            ctx.barrier();
            ctx.rank() as i32
        });
        assert_eq!(codes, vec![0, 1, 2]);
    }
}
