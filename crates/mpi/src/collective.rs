//! Collective operations over the point-to-point layer.
//!
//! Simple, readable algorithms (linear gather/scatter, recursive-doubling
//! allreduce when the size is a power of two, linear otherwise) — what a
//! miniature MPI needs to make the paper's over-subscription scenarios
//! (halo exchange, reductions) expressible.

use crate::comm::RankCtx;
use crate::msg::{bytes_to_f64s, f64s_to_bytes, Tag};

/// Reduction operators over `f64` vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum (`MPI_SUM`).
    Sum,
    /// Elementwise minimum (`MPI_MIN`).
    Min,
    /// Elementwise maximum (`MPI_MAX`).
    Max,
}

impl ReduceOp {
    fn combine(&self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Min => a.min(*b),
                ReduceOp::Max => a.max(*b),
            };
        }
    }
}

const TAG_BCAST: Tag = -100;
const TAG_REDUCE: Tag = -101;
const TAG_GATHER: Tag = -102;
const TAG_SCATTER: Tag = -103;
const TAG_ALLRED: Tag = -104;
const TAG_ALLGATHER: Tag = -105;
const TAG_ALLTOALL: Tag = -106;

impl RankCtx {
    /// Synchronize all ranks (delegates to the ULP-aware PiP barrier).
    pub fn barrier(&self) {
        self.world_barrier().wait();
    }

    fn world_barrier(&self) -> &ulp_pip::PipBarrier {
        &self.world().barrier
    }

    fn world(&self) -> &crate::comm::WorldShared {
        &self.world
    }

    /// Broadcast `data` from `root` to every rank; returns the payload.
    pub fn bcast(&self, root: usize, data: &[u8]) -> Vec<u8> {
        if self.rank() == root {
            for r in 0..self.size() {
                if r != root {
                    self.send(r, TAG_BCAST, data);
                }
            }
            data.to_vec()
        } else {
            self.recv(root as i32, TAG_BCAST).data
        }
    }

    /// Reduce `contribution` element-wise onto `root`; returns the result on
    /// the root, `None` elsewhere.
    pub fn reduce(&self, root: usize, op: ReduceOp, contribution: &[f64]) -> Option<Vec<f64>> {
        if self.rank() == root {
            let mut acc = contribution.to_vec();
            for _ in 0..self.size() - 1 {
                let msg = self.recv(crate::ANY_SOURCE, TAG_REDUCE);
                op.combine(&mut acc, &msg.as_f64s());
            }
            Some(acc)
        } else {
            self.send(root, TAG_REDUCE, &f64s_to_bytes(contribution));
            None
        }
    }

    /// Allreduce: recursive doubling for power-of-two worlds, otherwise
    /// reduce-to-0 + broadcast.
    pub fn allreduce(&self, op: ReduceOp, contribution: &[f64]) -> Vec<f64> {
        let size = self.size();
        if size == 1 {
            return contribution.to_vec();
        }
        if size.is_power_of_two() {
            let mut acc = contribution.to_vec();
            let mut distance = 1;
            while distance < size {
                let partner = self.rank() ^ distance;
                let got = self.sendrecv(
                    partner,
                    TAG_ALLRED + distance as Tag,
                    &f64s_to_bytes(&acc),
                    partner as i32,
                    TAG_ALLRED + distance as Tag,
                );
                op.combine(&mut acc, &bytes_to_f64s(&got.data));
                distance <<= 1;
            }
            acc
        } else {
            let reduced = self.reduce(0, op, contribution);
            let bytes = if self.rank() == 0 {
                f64s_to_bytes(&reduced.expect("root has result"))
            } else {
                Vec::new()
            };
            bytes_to_f64s(&self.bcast(0, &bytes))
        }
    }

    /// Gather every rank's `contribution` on `root` (rank order preserved).
    pub fn gather(&self, root: usize, contribution: &[u8]) -> Option<Vec<Vec<u8>>> {
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
            out[root] = contribution.to_vec();
            for _ in 0..self.size() - 1 {
                let msg = self.recv(crate::ANY_SOURCE, TAG_GATHER);
                out[msg.src] = msg.data;
            }
            Some(out)
        } else {
            self.send(root, TAG_GATHER, contribution);
            None
        }
    }

    /// Allgather: every rank receives every rank's `contribution`, in rank
    /// order (linear exchange).
    pub fn allgather(&self, contribution: &[u8]) -> Vec<Vec<u8>> {
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
        out[self.rank()] = contribution.to_vec();
        for dest in 0..self.size() {
            if dest != self.rank() {
                self.send(dest, TAG_ALLGATHER, contribution);
            }
        }
        for _ in 0..self.size() - 1 {
            let msg = self.recv(crate::ANY_SOURCE, TAG_ALLGATHER);
            out[msg.src] = msg.data;
        }
        out
    }

    /// All-to-all personalized exchange: `chunks[i]` goes to rank `i`;
    /// returns the chunks received, indexed by source rank.
    pub fn alltoall(&self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(chunks.len(), self.size(), "one chunk per destination");
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
        out[self.rank()] = chunks[self.rank()].clone();
        for (dest, chunk) in chunks.iter().enumerate() {
            if dest != self.rank() {
                self.send(dest, TAG_ALLTOALL, chunk);
            }
        }
        for _ in 0..self.size() - 1 {
            let msg = self.recv(crate::ANY_SOURCE, TAG_ALLTOALL);
            out[msg.src] = msg.data;
        }
        out
    }

    /// Scatter one chunk per rank from `root`; returns this rank's chunk.
    pub fn scatter(&self, root: usize, chunks: Option<&[Vec<u8>]>) -> Vec<u8> {
        if self.rank() == root {
            let chunks = chunks.expect("root must supply chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            for (r, chunk) in chunks.iter().enumerate() {
                if r != root {
                    self.send(r, TAG_SCATTER, chunk);
                }
            }
            chunks[root].clone()
        } else {
            self.recv(root as i32, TAG_SCATTER).data
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::WorldShared;
    use crate::net::NetModel;
    use std::sync::Arc;

    /// Drive `n` ranks on plain threads (collectives are runtime-agnostic).
    fn run_ranks<F>(n: usize, f: F) -> Vec<Vec<f64>>
    where
        F: Fn(RankCtx) -> Vec<f64> + Send + Sync + 'static,
    {
        let world = WorldShared::new(n, NetModel::INSTANT);
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let ctx = RankCtx::new(r, world.clone());
                let f = f.clone();
                std::thread::spawn(move || f(ctx))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn bcast_reaches_all() {
        let results = run_ranks(4, |ctx| {
            let data = ctx.bcast(2, if ctx.rank() == 2 { b"xyz" } else { b"" });
            vec![data.len() as f64]
        });
        assert!(results.iter().all(|r| r == &vec![3.0]));
    }

    #[test]
    fn reduce_sums_on_root() {
        let results = run_ranks(5, |ctx| {
            let mine = [ctx.rank() as f64, 1.0];
            match ctx.reduce(0, ReduceOp::Sum, &mine) {
                Some(acc) => acc,
                None => vec![-1.0],
            }
        });
        // Rank 0 has [0+1+2+3+4, 5] = [10, 5].
        assert_eq!(results[0], vec![10.0, 5.0]);
        for r in &results[1..] {
            assert_eq!(r, &vec![-1.0]);
        }
    }

    #[test]
    fn allreduce_power_of_two() {
        let results = run_ranks(4, |ctx| ctx.allreduce(ReduceOp::Sum, &[ctx.rank() as f64]));
        for r in &results {
            assert_eq!(r, &vec![6.0]); // 0+1+2+3
        }
    }

    #[test]
    fn allreduce_non_power_of_two() {
        let results = run_ranks(3, |ctx| {
            ctx.allreduce(ReduceOp::Max, &[ctx.rank() as f64 * 2.0])
        });
        for r in &results {
            assert_eq!(r, &vec![4.0]);
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = run_ranks(4, |ctx| {
            let mine = vec![ctx.rank() as u8; ctx.rank() + 1];
            match ctx.gather(1, &mine) {
                Some(all) => {
                    for (r, chunk) in all.iter().enumerate() {
                        assert_eq!(chunk, &vec![r as u8; r + 1]);
                    }
                    vec![all.len() as f64]
                }
                None => vec![0.0],
            }
        });
        assert_eq!(results[1], vec![4.0]);
    }

    #[test]
    fn scatter_distributes_chunks() {
        let results = run_ranks(3, |ctx| {
            let chunks: Option<Vec<Vec<u8>>> = if ctx.rank() == 0 {
                Some((0..3).map(|r| vec![r as u8 * 10; 2]).collect())
            } else {
                None
            };
            let mine = ctx.scatter(0, chunks.as_deref());
            assert_eq!(mine, vec![ctx.rank() as u8 * 10; 2]);
            vec![1.0]
        });
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let results = run_ranks(4, |ctx| {
            let mine = vec![ctx.rank() as u8 + 100];
            let all = ctx.allgather(&mine);
            for (r, chunk) in all.iter().enumerate() {
                assert_eq!(chunk, &vec![r as u8 + 100]);
            }
            vec![all.len() as f64]
        });
        assert!(results.iter().all(|r| r == &vec![4.0]));
    }

    #[test]
    fn alltoall_personalized_exchange() {
        let results = run_ranks(3, |ctx| {
            let me = ctx.rank() as u8;
            // chunk for dest d is [me, d].
            let chunks: Vec<Vec<u8>> = (0..3).map(|d| vec![me, d as u8]).collect();
            let got = ctx.alltoall(&chunks);
            for (src, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u8, me]);
            }
            vec![1.0]
        });
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static ARRIVED: AtomicUsize = AtomicUsize::new(0);
        run_ranks(4, |ctx| {
            ARRIVED.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(ARRIVED.load(Ordering::SeqCst), 4);
            vec![]
        });
    }
}
