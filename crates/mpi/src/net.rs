//! The simulated interconnect.
//!
//! §III: "The gap between computation speed and the communication latency is
//! getting bigger … the latency hiding technique becomes more important."
//! This module supplies the latency: every message carries a delivery time
//! computed from a configurable [`NetModel`] (base latency + per-byte cost),
//! and a receive cannot match the message before that time. An
//! over-subscribed ULP rank that would otherwise stall in `recv` can instead
//! yield to a sibling rank — the latency-hiding effect the paper attributes
//! to ULT/ULP-based MPI implementations (MPIQ, AMPI).

use std::time::{Duration, Instant};

/// Latency/bandwidth model of the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Base one-way latency.
    pub latency: Duration,
    /// Per-byte transfer time in nanoseconds.
    pub ns_per_byte: f64,
}

impl NetModel {
    /// Zero-cost network (intra-node shared memory, the PiP case).
    pub const INSTANT: NetModel = NetModel {
        latency: Duration::ZERO,
        ns_per_byte: 0.0,
    };

    /// A cluster-like interconnect: ~2 µs latency, ~10 GB/s bandwidth.
    pub const CLUSTER: NetModel = NetModel {
        latency: Duration::from_micros(2),
        ns_per_byte: 0.1,
    };

    /// A slow network (for visible latency-hiding demos): 200 µs + 1 GB/s.
    pub const WAN: NetModel = NetModel {
        latency: Duration::from_micros(200),
        ns_per_byte: 1.0,
    };

    /// When a message of `bytes` sent now becomes receivable.
    pub fn deliver_at(&self, bytes: usize) -> Instant {
        Instant::now()
            + self.latency
            + Duration::from_nanos((bytes as f64 * self.ns_per_byte) as u64)
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::INSTANT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_delivers_now() {
        let t = NetModel::INSTANT.deliver_at(1 << 20);
        assert!(t <= Instant::now() + Duration::from_millis(1));
    }

    #[test]
    fn wan_scales_with_size() {
        let small = NetModel::WAN.deliver_at(0);
        let large = NetModel::WAN.deliver_at(1 << 20);
        assert!(large > small);
        // 1 MiB at 1 GB/s ≈ 1 ms on top of latency.
        assert!(large - Instant::now() >= Duration::from_micros(1000));
    }
}
