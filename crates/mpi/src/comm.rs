//! The world: mailboxes, point-to-point operations, cooperative blocking.

use crate::msg::{matches, Envelope, Rank, Received, Tag, ANY_SOURCE, ANY_TAG};
use crate::net::NetModel;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One rank's incoming-message queue.
#[derive(Debug, Default)]
pub(crate) struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
}

impl Mailbox {
    fn deposit(&self, env: Envelope) {
        self.queue.lock().push_back(env);
    }

    /// Take the first *delivered* envelope matching `(src, tag)`.
    /// Non-overtaking: among messages from the same source, earlier
    /// sequence numbers match first (MPI ordering guarantee).
    fn take_match(&self, src: i32, tag: Tag) -> Option<Envelope> {
        let now = Instant::now();
        let mut q = self.queue.lock();
        // Find the matching envelope with the smallest sequence number that
        // has been "delivered" by the simulated network.
        let mut best: Option<(usize, u64)> = None;
        for (i, env) in q.iter().enumerate() {
            if env.deliver_at <= now
                && matches(env, src, tag)
                && best.map(|(_, seq)| env.seq < seq).unwrap_or(true)
            {
                best = Some((i, env.seq));
            }
        }
        best.and_then(|(i, _)| q.remove(i))
    }

    /// Is a matching (possibly undelivered) message present? (For probe.)
    fn probe(&self, src: i32, tag: Tag) -> Option<(Rank, Tag, usize)> {
        let now = Instant::now();
        let q = self.queue.lock();
        q.iter()
            .find(|e| e.deliver_at <= now && matches(e, src, tag))
            .map(|e| (e.src, e.tag, e.data.len()))
    }

    pub(crate) fn len(&self) -> usize {
        self.queue.lock().len()
    }
}

/// Shared state of a world of ranks.
#[derive(Debug)]
pub struct WorldShared {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) net: NetModel,
    seq: AtomicU64,
    pub(crate) barrier: ulp_pip::PipBarrier,
}

impl WorldShared {
    /// Mailboxes and a rendezvous barrier for `size` ranks under `net`.
    pub fn new(size: usize, net: NetModel) -> Arc<WorldShared> {
        Arc::new(WorldShared {
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            net,
            seq: AtomicU64::new(0),
            barrier: ulp_pip::PipBarrier::new(size),
        })
    }

    /// The world size (number of ranks).
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }
}

/// The communicator handle a rank computes with.
#[derive(Clone)]
pub struct RankCtx {
    pub(crate) rank: Rank,
    pub(crate) world: Arc<WorldShared>,
}

/// Handle for a non-blocking receive.
pub struct RecvRequest {
    ctx: RankCtx,
    src: i32,
    tag: Tag,
    done: Option<Received>,
}

impl RankCtx {
    /// The communicator for `rank` within `world`.
    pub fn new(rank: Rank, world: Arc<WorldShared>) -> RankCtx {
        RankCtx { rank, world }
    }

    /// This rank's number.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.world.size()
    }

    /// Cooperative wait step used by every blocking operation: run another
    /// ULP if one is runnable, otherwise let the OS scheduler run someone.
    /// This is the latency-hiding primitive — a ULT/ULP rank stalls without
    /// stalling its kernel context.
    #[inline]
    pub(crate) fn stall(&self) {
        if !ulp_core::yield_now() {
            std::thread::yield_now();
        }
    }

    /// Eager (buffered) send: deposits the message with its simulated
    /// delivery time and returns immediately — `MPI_Send` with a buffered
    /// protocol, which is what small-message paths do in practice.
    pub fn send(&self, dest: Rank, tag: Tag, data: &[u8]) {
        assert!(dest < self.world.size(), "send to nonexistent rank {dest}");
        let env = Envelope {
            src: self.rank,
            tag,
            data: data.to_vec(),
            deliver_at: self.world.net.deliver_at(data.len()),
            seq: self.world.seq.fetch_add(1, Ordering::Relaxed),
        };
        self.world.mailboxes[dest].deposit(env);
    }

    /// Blocking receive with wildcard support (`ANY_SOURCE`/`ANY_TAG`).
    /// Cooperative: yields to other ULPs while waiting.
    pub fn recv(&self, src: i32, tag: Tag) -> Received {
        loop {
            if let Some(env) = self.world.mailboxes[self.rank].take_match(src, tag) {
                return Received {
                    src: env.src,
                    tag: env.tag,
                    data: env.data,
                };
            }
            self.stall();
        }
    }

    /// Non-blocking receive: returns a request to `test`/`wait` on —
    /// `MPI_Irecv`.
    pub fn irecv(&self, src: i32, tag: Tag) -> RecvRequest {
        RecvRequest {
            ctx: self.clone(),
            src,
            tag,
            done: None,
        }
    }

    /// Non-blocking probe: is a matching message available right now?
    pub fn iprobe(&self, src: i32, tag: Tag) -> Option<(Rank, Tag, usize)> {
        self.world.mailboxes[self.rank].probe(src, tag)
    }

    /// Send-and-receive in one call (deadlock-free pairwise exchange).
    pub fn sendrecv(
        &self,
        dest: Rank,
        send_tag: Tag,
        data: &[u8],
        src: i32,
        recv_tag: Tag,
    ) -> Received {
        self.send(dest, send_tag, data);
        self.recv(src, recv_tag)
    }

    /// Pending messages in this rank's mailbox (diagnostics).
    pub fn pending(&self) -> usize {
        self.world.mailboxes[self.rank].len()
    }
}

impl RecvRequest {
    /// Poll for completion.
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        if let Some(env) = self.ctx.world.mailboxes[self.ctx.rank].take_match(self.src, self.tag) {
            self.done = Some(Received {
                src: env.src,
                tag: env.tag,
                data: env.data,
            });
            true
        } else {
            false
        }
    }

    /// Cooperative blocking wait.
    pub fn wait(mut self) -> Received {
        while !self.test() {
            self.ctx.stall();
        }
        self.done.expect("test() returned true")
    }
}

/// Re-exported wildcard constants on the context for ergonomics.
impl RankCtx {
    /// [`ANY_SOURCE`], re-exported on the context.
    pub const ANY_SOURCE: i32 = ANY_SOURCE;
    /// [`ANY_TAG`], re-exported on the context.
    pub const ANY_TAG: Tag = ANY_TAG;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_same_thread() {
        let w = WorldShared::new(2, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        a.send(1, 5, b"hello");
        let got = b.recv(0, 5);
        assert_eq!(got.data, b"hello");
        assert_eq!(got.src, 0);
        assert_eq!(got.tag, 5);
    }

    #[test]
    fn non_overtaking_order_per_pair() {
        let w = WorldShared::new(2, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        for i in 0..5u8 {
            a.send(1, 1, &[i]);
        }
        for i in 0..5u8 {
            assert_eq!(b.recv(0, 1).data, vec![i]);
        }
    }

    #[test]
    fn tag_selective_matching() {
        let w = WorldShared::new(2, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        a.send(1, 1, b"one");
        a.send(1, 2, b"two");
        assert_eq!(b.recv(0, 2).data, b"two");
        assert_eq!(b.recv(0, 1).data, b"one");
    }

    #[test]
    fn wildcard_source() {
        let w = WorldShared::new(3, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let c = RankCtx::new(2, w.clone());
        let b = RankCtx::new(1, w);
        a.send(1, 9, b"from0");
        c.send(1, 9, b"from2");
        let first = b.recv(ANY_SOURCE, 9);
        let second = b.recv(ANY_SOURCE, 9);
        let mut srcs = [first.src, second.src];
        srcs.sort();
        assert_eq!(srcs, [0, 2]);
    }

    #[test]
    fn network_latency_delays_delivery() {
        let w = WorldShared::new(2, NetModel::WAN);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        let t0 = Instant::now();
        a.send(1, 0, &[0u8; 1024]);
        // Immediately after the send nothing is deliverable yet.
        assert!(b.iprobe(0, 0).is_none());
        let got = b.recv(0, 0);
        assert!(t0.elapsed() >= NetModel::WAN.latency, "recv returned early");
        assert_eq!(got.data.len(), 1024);
    }

    #[test]
    fn irecv_test_and_wait() {
        let w = WorldShared::new(2, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        let mut req = b.irecv(0, 3);
        assert!(!req.test());
        a.send(1, 3, b"later");
        let got = req.wait();
        assert_eq!(got.data, b"later");
    }

    #[test]
    fn sendrecv_pairwise() {
        let w = WorldShared::new(2, NetModel::INSTANT);
        let a = RankCtx::new(0, w.clone());
        let b = RankCtx::new(1, w);
        b.send(0, 7, b"pong");
        let got = a.sendrecv(1, 7, b"ping", 1, 7);
        assert_eq!(got.data, b"pong");
        assert_eq!(b.recv(0, 7).data, b"ping");
    }

    #[test]
    #[should_panic(expected = "nonexistent rank")]
    fn send_out_of_range_panics() {
        let w = WorldShared::new(1, NetModel::INSTANT);
        let a = RankCtx::new(0, w);
        a.send(5, 0, b"x");
    }
}
