//! Messages, tags, matching and typed payload helpers.

use std::time::Instant;

/// A rank number within a world.
pub type Rank = usize;

/// Message tag.
pub type Tag = i32;

/// Wildcard source for [`crate::RankCtx::recv`] matching.
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag.
pub const ANY_TAG: i32 = -1;

/// One in-flight message.
#[derive(Debug)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes.
    pub data: Vec<u8>,
    /// Simulated-network delivery time; unmatchable before this.
    pub deliver_at: Instant,
    /// Monotonic sequence for deterministic (non-overtaking) matching
    /// between a pair, as MPI requires.
    pub seq: u64,
}

/// A received message: payload plus its matched envelope metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received {
    /// Sending rank (resolved even for `ANY_SOURCE` receives).
    pub src: Rank,
    /// Message tag (resolved even for `ANY_TAG` receives).
    pub tag: Tag,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl Received {
    /// Interpret the payload as a little-endian slice of `f64`.
    pub fn as_f64s(&self) -> Vec<f64> {
        bytes_to_f64s(&self.data)
    }

    /// Interpret the payload as a little-endian slice of `u64`.
    pub fn as_u64s(&self) -> Vec<u64> {
        self.data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect()
    }
}

/// Encode a slice of `f64` as little-endian bytes.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into `f64`s (length must be a multiple of 8).
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a slice of `u64` as little-endian bytes.
pub fn u64s_to_bytes(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Does an envelope match a `(source, tag)` request (with wildcards)?
pub fn matches(env: &Envelope, src: i32, tag: Tag) -> bool {
    (src == ANY_SOURCE || env.src == src as usize) && (tag == ANY_TAG || env.tag == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: Rank, tag: Tag) -> Envelope {
        Envelope {
            src,
            tag,
            data: Vec::new(),
            deliver_at: Instant::now(),
            seq: 0,
        }
    }

    #[test]
    fn exact_and_wildcard_matching() {
        let e = env(3, 7);
        assert!(matches(&e, 3, 7));
        assert!(matches(&e, ANY_SOURCE, 7));
        assert!(matches(&e, 3, ANY_TAG));
        assert!(matches(&e, ANY_SOURCE, ANY_TAG));
        assert!(!matches(&e, 2, 7));
        assert!(!matches(&e, 3, 8));
    }

    #[test]
    fn f64_roundtrip() {
        let xs = [1.5f64, -2.25, 1e300, 0.0];
        let bytes = f64s_to_bytes(&xs);
        assert_eq!(bytes.len(), 32);
        assert_eq!(bytes_to_f64s(&bytes), xs);
    }

    #[test]
    fn u64_roundtrip() {
        let xs = [u64::MAX, 0, 42];
        let r = Received {
            src: 0,
            tag: 0,
            data: u64s_to_bytes(&xs),
        };
        assert_eq!(r.as_u64s(), xs);
    }
}
