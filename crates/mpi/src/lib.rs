//! # ulp-mpi — a miniature MPI on top of ULP-PiP
//!
//! The paper's §III names MPI as the motivation for user-level processes:
//! MPI processes are *processes* (per-rank PIDs, FD tables), so running an
//! over-subscribed rank set efficiently needs process-grade execution
//! entities with thread-grade context-switch costs — exactly what ULP
//! provides. This crate closes the loop: a small but complete MPI-like
//! layer where
//!
//! - each **rank** is a PiP task / BLT with its own simulated-kernel PID,
//! - blocking `recv`/`wait`/`barrier` **cooperatively yield** instead of
//!   stalling the kernel context (latency hiding under over-subscription),
//! - a configurable [`NetModel`] supplies the communication latency the
//!   paper says keeps growing relative to compute,
//! - collectives (`bcast`, `reduce`, `allreduce`, `gather`, `scatter`,
//!   `barrier`) are built on the point-to-point layer.
//!
//! ```
//! use ulp_mpi::{ReduceOp, UlpWorld};
//!
//! let world = UlpWorld::builder().ranks(4).schedulers(2).build();
//! let codes = world.run("pi", |ctx| {
//!     let partial = [1.0 / ctx.size() as f64];
//!     let total = ctx.allreduce(ReduceOp::Sum, &partial);
//!     assert!((total[0] - 1.0).abs() < 1e-12);
//!     0
//! });
//! assert_eq!(codes, vec![0; 4]);
//! ```

#![warn(missing_docs)]

pub mod collective;
pub mod comm;
pub mod msg;
pub mod net;
pub mod world;

pub use collective::ReduceOp;
pub use comm::{RankCtx, RecvRequest, WorldShared};
pub use msg::{
    bytes_to_f64s, f64s_to_bytes, u64s_to_bytes, Envelope, Rank, Received, Tag, ANY_SOURCE, ANY_TAG,
};
pub use net::NetModel;
pub use world::{UlpWorld, UlpWorldBuilder};
