//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this shim vendors
//! exactly the surface the workspace uses to *validate* generated JSON:
//! a [`Value`] tree, a strict recursive-descent [`from_str`] parser, and a
//! [`to_string`] serializer. It is not serde: there is no derive machinery
//! and no streaming — inputs here are small trace files and test fixtures.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser (defense against stack
/// overflow on adversarial input; real traces nest 3–4 levels).
const MAX_DEPTH: usize = 128;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are kept as `f64`, which is lossless for the integer
    /// ranges this workspace emits (counters < 2^53, µs timestamps).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object-key or array-index lookup; `None` on type mismatch or absence.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Polymorphic index for [`Value::get`] and the `Index` operators.
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(o) => o.get(*self),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(a) => a.get(*self),
            _ => None,
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                write!(f, "{}", *n as i64)
            } else {
                write!(f, "{n}")
            }
        }
        Value::String(s) => write_escaped(f, s),
        Value::Array(a) => {
            f.write_str("[")?;
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_value(f, item)?;
            }
            f.write_str("]")
        }
        Value::Object(o) => {
            f.write_str("{")?;
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write_escaped(f, k)?;
                f.write_str(":")?;
                write_value(f, item)?;
            }
            f.write_str("}")
        }
    }
}

/// Serialize a [`Value`] to its compact JSON text.
pub fn to_string(v: &Value) -> Result<String, Error> {
    Ok(v.to_string())
}

/// Parse error, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error {
            msg: msg.to_string(),
            at: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn expect_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Value::Null),
            Some(b't') => self.expect_literal("true", Value::Bool(true)),
            Some(b'f') => self.expect_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return self.err("expected object key");
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => b - b'0',
                Some(b @ b'a'..=b'f') => b - b'a' + 10,
                Some(b @ b'A'..=b'F') => b - b'A' + 10,
                _ => return self.err("invalid \\u escape"),
            };
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired surrogate");
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return self.err("invalid low surrogate");
                            }
                            let cp =
                                0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi as u32)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return self.err("invalid \\u escape"),
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x20 => return self.err("control character in string"),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return self.err("invalid UTF-8"),
                    };
                    if start + width > self.bytes.len() {
                        return self.err("truncated UTF-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..start + width]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8"),
                    }
                    self.pos = start + width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => self.err("invalid number"),
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert!(v["a"][2]["b"].is_null());
        assert_eq!(v["c"].as_str(), Some("x"));
        assert_eq!(v["missing"].as_str(), None);
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\n\t\"\\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ \u{e9} \u{1f600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("\"\\ud800\"").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn round_trips() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":true,"d":null}}"#;
        let v = from_str(src).unwrap();
        let out = to_string(&v).unwrap();
        assert_eq!(from_str(&out).unwrap(), v);
    }

    #[test]
    fn integer_accessors() {
        let v = from_str("[7, -3, 2.5]").unwrap();
        assert_eq!(v[0].as_u64(), Some(7));
        assert_eq!(v[1].as_i64(), Some(-3));
        assert_eq!(v[1].as_u64(), None);
        assert_eq!(v[2].as_u64(), None);
    }
}
