//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided (the one part of crossbeam this
//! workspace uses), implemented over `std::sync::mpsc`, whose `Sender` has
//! been `Sync` since Rust 1.72 — so the crossbeam ergonomics carry over.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Unbounded MPSC channel (crossbeam's `unbounded` signature).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(41).unwrap();
        tx.send(1).unwrap();
        assert_eq!(rx.iter().take(2).sum::<i32>(), 42);
    }
}
