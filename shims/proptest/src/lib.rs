//! Offline stand-in for `proptest`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the proptest API the workspace's property tests use:
//! integer-range / tuple / `Just` / mapped / vec / one-of / regex-literal
//! strategies, `any::<T>()`, and the `proptest!` / `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: generation is a deterministic xorshift stream seeded from the
//! test's name, so every run explores the same cases and failures reproduce
//! exactly. That trade keeps the dependency surface at zero while retaining
//! the model-checking value of the property tests.

use std::ops::Range;

/// Deterministic xorshift64* generator; seeded per test from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a of the bytes, never zero).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test values (the proptest trait, minus shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (the result of [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }

    /// Helper for `prop_oneof!`: erase a strategy's concrete type.
    pub fn boxed(s: impl Strategy<Value = T> + 'static) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the full value domain of `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `&str` as a strategy: a micro-regex of alternations of character-class /
/// literal atoms with `{m,n}` repetition — the proptest string-strategy
/// subset these tests use (e.g. `"[a-z]{1,8}|\.|\.\."`).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let branches: Vec<&str> = split_top_level_alternation(self);
        let branch = branches[rng.below(branches.len() as u64) as usize];
        generate_branch(branch, rng)
    }
}

fn split_top_level_alternation(pattern: &str) -> Vec<&str> {
    let bytes = pattern.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 1, // skip the escaped byte
            b'[' | b'{' | b'(' => depth += 1,
            b']' | b'}' | b')' => depth = depth.saturating_sub(1),
            b'|' if depth == 0 => {
                parts.push(&pattern[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&pattern[start..]);
    parts
}

fn generate_branch(branch: &str, rng: &mut TestRng) -> String {
    let bytes = branch.as_bytes();
    let mut out = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        // Parse one atom.
        let mut chars: Vec<char> = Vec::new();
        match bytes[i] {
            b'[' => {
                let close = branch[i..]
                    .find(']')
                    .map(|o| i + o)
                    .expect("unterminated character class");
                let class = &bytes[i + 1..close];
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == b'-' {
                        for c in class[j]..=class[j + 2] {
                            chars.push(c as char);
                        }
                        j += 3;
                    } else {
                        chars.push(class[j] as char);
                        j += 1;
                    }
                }
                i = close + 1;
            }
            b'\\' => {
                chars.push(bytes[i + 1] as char);
                i += 2;
            }
            c => {
                chars.push(c as char);
                i += 1;
            }
        }
        // Parse an optional {m,n} / {m} repetition.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = branch[i..]
                .find('}')
                .map(|o| i + o)
                .expect("unterminated repetition");
            let body = &branch[i + 1..close];
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse::<usize>().expect("repetition bound"),
                    b.parse::<usize>().expect("repetition bound"),
                ),
                None => {
                    let n = body.parse::<usize>().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
    }
    out
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with element strategy `elem` and a size drawn
    /// from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Union::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u8..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..5).generate(&mut rng);
            assert!(w < 5);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u8), (10u8..20).prop_map(|v| v * 2)];
        let mut rng = TestRng::from_name("oneof");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    #[test]
    fn vec_sizes_in_range() {
        let strat = collection::vec(0u8..10, 2..6);
        let mut rng = TestRng::from_name("vec");
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,8}|\\.|\\.\\.".generate(&mut rng);
            let ok = s == "."
                || s == ".."
                || ((1..=8).contains(&s.len()) && s.bytes().all(|b| b.is_ascii_lowercase()));
            assert!(ok, "unexpected generation {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, ys in collection::vec(0u8..4, 1..5)) {
            prop_assert!(x >= 1);
            prop_assert_eq!(ys.iter().filter(|&&y| y > 3).count(), 0);
        }
    }
}
