//! Offline stand-in for the `libc` crate.
//!
//! The build environment has no access to crates.io, so this crate declares
//! exactly the Linux/glibc FFI surface the workspace uses — nothing more.
//! Constants are the x86_64/AArch64 Linux values (both LP64, so the type
//! aliases coincide); adding a new target means auditing the `SYS_futex`
//! number and the `_SC_*` constants.

#![allow(non_camel_case_types)]

pub use std::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type pid_t = i32;
pub type time_t = i64;

#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

#[cfg(target_arch = "x86_64")]
#[allow(non_upper_case_globals)]
pub const SYS_futex: c_long = 202;
#[cfg(target_arch = "aarch64")]
#[allow(non_upper_case_globals)]
pub const SYS_futex: c_long = 98;

pub const FUTEX_WAIT: c_int = 0;
pub const FUTEX_WAKE: c_int = 1;
pub const FUTEX_PRIVATE_FLAG: c_int = 128;

pub const ETIMEDOUT: c_int = 110;

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;

pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_STACK: c_int = 0x20000;
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

pub const MADV_DONTNEED: c_int = 4;

pub const _SC_PAGESIZE: c_int = 30;

pub const PR_SET_TIMERSLACK: c_int = 29;

pub const CPU_SETSIZE: c_int = 1024;

/// `cpu_set_t` as glibc lays it out: 1024 bits of CPU mask.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

/// glibc's `CPU_SET` macro. Out-of-range CPUs are ignored, as glibc does.
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / 64] |= 1u64 << (cpu % 64);
    }
}

extern "C" {
    pub fn syscall(num: c_long, ...) -> c_long;
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn prctl(option: c_int, ...) -> c_int;
    pub fn sched_yield() -> c_int;
    pub fn getpid() -> pid_t;
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn __errno_location() -> *mut c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let sz = unsafe { sysconf(_SC_PAGESIZE) };
        assert!(sz >= 4096, "page size {sz}");
    }

    #[test]
    fn getpid_is_positive() {
        assert!(unsafe { getpid() } > 0);
    }

    #[test]
    fn cpu_set_sets_bits() {
        let mut set: cpu_set_t = unsafe { std::mem::zeroed() };
        CPU_SET(0, &mut set);
        CPU_SET(65, &mut set);
        assert_eq!(set.bits[0], 1);
        assert_eq!(set.bits[1], 2);
    }
}
