//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `parking_lot` API surface the workspace uses — non-poisoning
//! `Mutex`/`RwLock` guards and a `Condvar` that takes `&mut MutexGuard` —
//! implemented over `std::sync`. Poisoned std locks are recovered silently,
//! matching parking_lot's "no poisoning" contract.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Non-poisoning mutual exclusion lock (parking_lot-compatible surface).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]. The inner `Option` is only `None` transiently while
/// a [`Condvar`] wait has taken the std guard; it is always `Some` when user
/// code can observe it.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a bounded [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on `&mut MutexGuard`, parking_lot style.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot's
        // callers in this workspace ignore the value.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Non-poisoning reader-writer lock (parking_lot-compatible surface).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(5));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
