#!/usr/bin/env python3
"""Validate the Perfetto wake flow arrows in a ULP_TRACE dump.

Usage: flow_check.py TRACE.json MIN_PAIRS

Wake edges render as Chrome flow events: a ``ph:"s"`` half on the waker's
track and a ``ph:"f"`` half on the wakee's track, paired by ``cat`` + ``id``
(see crates/core/src/export.rs). This checker is an independent parser — it
shares no code with the exporter — and asserts:

  * the file is valid JSON with a ``traceEvents`` list;
  * every flow half in ``cat:"wake"`` has exactly one partner with the same
    id, the start never comes after the finish, and both halves carry the
    same ``wake:<site>`` name;
  * at least MIN_PAIRS matched pairs exist (the CI server-smoke passes the
    request count: every request couples at least once, and every couple
    grant is a wake edge, so one pair per request is a structural floor).

Exits 0 quietly on success, 1 with a diagnostic on any violation.
"""

import json
import sys


def fail(msg):
    print(f"flow_check: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        fail(f"usage: {sys.argv[0]} TRACE.json MIN_PAIRS")
    path, min_pairs = sys.argv[1], int(sys.argv[2])
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")

    starts, finishes = {}, {}
    for ev in events:
        if ev.get("cat") != "wake":
            continue
        ph, eid = ev.get("ph"), ev.get("id")
        if ph not in ("s", "f"):
            fail(f"unexpected phase {ph!r} in cat 'wake': {ev}")
        if not str(ev.get("name", "")).startswith("wake:"):
            fail(f"wake flow event without a wake:<site> name: {ev}")
        side = starts if ph == "s" else finishes
        if eid in side:
            fail(f"duplicate flow id {eid} for ph {ph!r}")
        side[eid] = ev

    if set(starts) != set(finishes):
        lone = set(starts) ^ set(finishes)
        fail(f"{len(lone)} unpaired flow halves (ids {sorted(lone)[:8]}...)")
    for eid, s in starts.items():
        f_ = finishes[eid]
        if s["name"] != f_["name"]:
            fail(f"flow {eid}: start {s['name']} vs finish {f_['name']}")
        if float(s["ts"]) > float(f_["ts"]):
            fail(f"flow {eid}: start ts {s['ts']} after finish ts {f_['ts']}")
        if f_.get("bp") != "e":
            fail(f"flow {eid}: finish half must bind to the enclosing slice")

    if len(starts) < min_pairs:
        fail(f"only {len(starts)} flow pairs, expected at least {min_pairs}")
    print(f"flow_check: ok: {len(starts)} wake flow pairs, all matched")


if __name__ == "__main__":
    main()
